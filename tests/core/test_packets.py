"""Wire codec: encryption roundtrips, counter sync, tamper evidence."""

import pytest

from repro.core.packets import ChannelCodec
from repro.errors import CryptoError, IntegrityError
from repro.mem.request import RequestType

KEY = bytes(range(16))


def codec_pair():
    """Processor- and memory-side codecs over the same session key."""
    return ChannelCodec(KEY), ChannelCodec(KEY)


class TestCommandRoundtrip:
    def test_read_command(self):
        processor, memory = codec_pair()
        wire, counter = processor.encode_command(RequestType.READ, 0x1000)
        decoded = memory.decode_command(wire)
        assert decoded.request_type is RequestType.READ
        assert decoded.address == 0x1000
        assert decoded.counter == counter == 0

    def test_write_command(self):
        processor, memory = codec_pair()
        wire, _ = processor.encode_command(RequestType.WRITE, 0xABC0)
        decoded = memory.decode_command(wire)
        assert decoded.request_type is RequestType.WRITE
        assert decoded.address == 0xABC0

    def test_counters_stay_synchronized(self):
        processor, memory = codec_pair()
        for i in range(10):
            wire, _ = processor.encode_command(RequestType.READ, i * 64)
            assert memory.decode_command(wire).address == i * 64
        assert processor.request_counter == memory.request_counter == 10

    def test_same_address_different_wire_bytes(self):
        """Counter mode: temporal reuse is invisible (Observation 1)."""
        processor, _ = codec_pair()
        first, _ = processor.encode_command(RequestType.READ, 0x1000)
        second, _ = processor.encode_command(RequestType.READ, 0x1000)
        assert first != second

    def test_oversized_address_rejected(self):
        processor, _ = codec_pair()
        with pytest.raises(CryptoError):
            processor.encode_command(RequestType.READ, 1 << 64)

    def test_wrong_packet_size_rejected(self):
        _, memory = codec_pair()
        with pytest.raises(CryptoError):
            memory.decode_command(b"short")


class TestDesynchronization:
    def test_lost_message_garbles_decode(self):
        processor, memory = codec_pair()
        processor.encode_command(RequestType.READ, 0x40)  # lost on the wire
        wire, _ = processor.encode_command(RequestType.READ, 0x80)
        # Memory decodes with the stale pad: type byte is garbage with
        # overwhelming probability.
        with pytest.raises(IntegrityError):
            memory.decode_command(wire)


class TestDataRoundtrip:
    def test_request_data(self):
        processor, memory = codec_pair()
        block = bytes(range(64))
        assert memory.decode_request_data(processor.encode_request_data(block)) == block

    def test_response_data(self):
        processor, memory = codec_pair()
        block = bytes(reversed(range(64)))
        assert processor.decode_response_data(memory.encode_response_data(block)) == block

    def test_streams_are_independent(self):
        processor, memory = codec_pair()
        # Consuming response pads must not desync the request stream.
        memory.encode_response_data(b"\x00" * 64)
        wire, _ = processor.encode_command(RequestType.READ, 0)
        assert memory.decode_command(wire).address == 0

    def test_second_encryption_hides_identical_ciphertext(self):
        """The same at-rest ciphertext never looks the same on the bus."""
        processor, _ = codec_pair()
        at_rest = b"\x77" * 64
        assert processor.encode_request_data(at_rest) != processor.encode_request_data(
            at_rest
        )

    def test_wrong_data_size_rejected(self):
        processor, _ = codec_pair()
        with pytest.raises(CryptoError):
            processor.encode_request_data(b"x" * 63)


class TestTags:
    def test_tag_verifies(self):
        processor, memory = codec_pair()
        tag = processor.make_tag(RequestType.READ, 0x40, processor.request_counter)
        wire, _ = processor.encode_command(RequestType.READ, 0x40)
        decoded = memory.decode_command(wire)
        memory.verify_tag(decoded, tag)  # must not raise

    def test_stale_counter_tag_rejected(self):
        """A replayed tag reflects an old counter: verification fails."""
        processor, memory = codec_pair()
        stale_tag = processor.make_tag(RequestType.READ, 0x40, 5)  # old counter
        wire, _ = processor.encode_command(RequestType.READ, 0x40)  # counter 0
        decoded = memory.decode_command(wire)
        with pytest.raises(IntegrityError):
            memory.verify_tag(decoded, stale_tag)

    def test_wrong_address_tag_rejected(self):
        processor, memory = codec_pair()
        tag = processor.make_tag(RequestType.READ, 0x80, 0)  # different address
        wire, _ = processor.encode_command(RequestType.READ, 0x40)
        decoded = memory.decode_command(wire)
        with pytest.raises(IntegrityError):
            memory.verify_tag(decoded, tag)

    def test_ciphertext_tag_roundtrip(self):
        processor, memory = codec_pair()
        wire, _ = processor.encode_command(RequestType.WRITE, 0x80)
        tag = processor.make_ciphertext_tag(wire)
        memory.verify_ciphertext_tag(wire, tag)

    def test_ciphertext_tag_detects_flip(self):
        processor, memory = codec_pair()
        wire, _ = processor.encode_command(RequestType.WRITE, 0x80)
        tag = processor.make_ciphertext_tag(wire)
        tampered = bytes([wire[0] ^ 1]) + wire[1:]
        with pytest.raises(IntegrityError):
            memory.verify_ciphertext_tag(tampered, tag)
