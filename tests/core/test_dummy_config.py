"""Dummy-address policies (§3.3) and controller configuration."""

import pytest

from repro.core.config import (
    AuthMode,
    ChannelInjection,
    DummyAddressPolicy,
    ObfusMemConfig,
)
from repro.core.dummy import DummyRequestFactory
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.request import RequestType


def make_factory(policy, channels=2):
    mapping = AddressMapping(channels=channels)
    return DummyRequestFactory(policy, mapping, DeterministicRng(3)), mapping


class TestFixedPolicy:
    def test_targets_reserved_block(self):
        factory, mapping = make_factory(DummyAddressPolicy.FIXED)
        dummy = factory.make(1, RequestType.WRITE, real_address=0x4000)
        assert dummy.address == mapping.dummy_block_address(1)
        assert dummy.is_dummy and dummy.droppable

    def test_same_address_every_time(self):
        factory, _ = make_factory(DummyAddressPolicy.FIXED)
        first = factory.make(0, RequestType.READ)
        second = factory.make(0, RequestType.READ)
        assert first.address == second.address


class TestOriginalPolicy:
    def test_mirrors_real_address(self):
        factory, _ = make_factory(DummyAddressPolicy.ORIGINAL)
        dummy = factory.make(0, RequestType.WRITE, real_address=0x8000)
        assert dummy.address == 0x8000
        assert not dummy.droppable  # really writes the array

    def test_without_real_address_falls_back(self):
        factory, mapping = make_factory(DummyAddressPolicy.ORIGINAL)
        dummy = factory.make(0, RequestType.READ)
        assert dummy.address == mapping.dummy_block_address(0)
        assert not dummy.droppable


class TestRandomPolicy:
    def test_address_on_requested_channel(self):
        factory, mapping = make_factory(DummyAddressPolicy.RANDOM, channels=4)
        for channel in range(4):
            dummy = factory.make(channel, RequestType.WRITE)
            assert mapping.channel_of(dummy.address) == channel
            assert not dummy.droppable

    def test_addresses_vary(self):
        factory, _ = make_factory(DummyAddressPolicy.RANDOM)
        addresses = {factory.make(0, RequestType.READ).address for _ in range(20)}
        assert len(addresses) > 10


class TestConfig:
    def test_defaults_match_paper(self):
        config = ObfusMemConfig()
        assert config.dummy_policy is DummyAddressPolicy.FIXED
        assert config.channel_injection is ChannelInjection.OPT
        assert config.auth is AuthMode.NONE
        assert config.substitute_dummies

    def test_auth_verify_exposed_overlaps_for_eam(self):
        config = ObfusMemConfig(auth=AuthMode.ENCRYPT_AND_MAC)
        # 64 x 1ns MD5 fill < 70ns overlap window -> fully hidden.
        assert config.auth_verify_exposed_ps() == 0

    def test_auth_verify_exposed_serializes_for_etm(self):
        config = ObfusMemConfig(auth=AuthMode.ENCRYPT_THEN_MAC)
        assert config.auth_verify_exposed_ps() == 64_000

    def test_no_auth_no_exposure(self):
        assert ObfusMemConfig().auth_verify_exposed_ps() == 0

    def test_tag_occupancy_only_with_auth(self):
        assert ObfusMemConfig().tag_bus_extra_ps == 0
        assert ObfusMemConfig(auth=AuthMode.ENCRYPT_AND_MAC).tag_bus_extra_ps > 0

    def test_negative_residual_rejected(self):
        with pytest.raises(ConfigurationError):
            ObfusMemConfig(auth_gen_residual_ps=-1)
