"""HIDE chunk-permutation baseline: correctness and partial protection."""

import pytest

from repro.analysis.leakage import (
    chunk_locality_score,
    ciphertext_repeat_fraction,
    spatial_locality_score,
)
from repro.core.hide import HideController
from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, MemoryBus
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry


def make_hide(bus=None, **kwargs):
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(), stats, bus=bus)
    controller = HideController(memory, stats, DeterministicRng(5), **kwargs)
    return engine, stats, controller


class TestRemapping:
    def test_remap_stays_within_chunk(self):
        _, _, controller = make_hide()
        for block in range(0, 100, 7):
            address = block * 64
            remapped = controller.remap(address)
            assert remapped // controller.chunk_bytes == address // controller.chunk_bytes

    def test_remap_is_a_permutation(self):
        _, _, controller = make_hide()
        remapped = {controller.remap(b * 64) for b in range(controller.blocks_per_chunk)}
        assert len(remapped) == controller.blocks_per_chunk

    def test_remap_stable_within_epoch(self):
        _, _, controller = make_hide()
        assert controller.remap(0x1000) == controller.remap(0x1000)

    def test_different_chunks_independent(self):
        _, _, controller = make_hide()
        a = controller.remap(0) % controller.chunk_bytes
        b = controller.remap(controller.chunk_bytes) % controller.chunk_bytes
        # Not a strong property, but the permutations are drawn separately.
        assert isinstance(a, int) and isinstance(b, int)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            make_hide(chunk_bytes=100)
        with pytest.raises(ConfigurationError):
            make_hide(repermute_interval=0)


class TestRequestFlow:
    def test_read_completes_with_original_address_view(self):
        engine, _, controller = make_hide()
        done = []
        request = MemoryRequest(0x2000, RequestType.READ)
        request.issue_time_ps = 0
        controller.issue(request, lambda r: done.append(r))
        engine.run()
        assert done[0].address == 0x2000  # caller sees its own address

    def test_repermutation_after_interval(self):
        engine, stats, controller = make_hide(repermute_interval=8)
        for i in range(8):
            controller.issue(MemoryRequest(i * 64, RequestType.READ), None)
        engine.run()
        assert stats.group("hide").get("repermutations") == 1
        # The permutation (almost surely) changed; traffic was paid.
        assert stats.group("hide").get("repermute_blocks_moved") > 0

    def test_repermutation_traffic_reaches_memory(self):
        engine, stats, controller = make_hide(
            repermute_interval=4, repermute_cost_blocks=16
        )
        for i in range(4):
            controller.issue(MemoryRequest(i * 64, RequestType.READ), None)
        engine.run()
        assert stats.group("channel0").get("reads") >= 4 + 16


class TestPartialProtection:
    """The §7 contrast: HIDE hides less than ObfusMem, for less cost."""

    def _observe_hide(self, records):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_hide(bus=bus)
        core = TraceDrivenCore(
            engine, Trace("hide", records), controller, window=4, stats=StatRegistry()
        )
        core.start()
        engine.run()
        return observer.transfers

    def _streaming_records(self):
        return [
            TraceRecord(gap_ns=50.0, address=i * 64, is_write=False)
            for i in range(800)
        ]

    def test_intra_chunk_locality_hidden(self):
        transfers = self._observe_hide(self._streaming_records())
        # Consecutive blocks land on shuffled offsets: block-grain locality
        # drops far below the unprotected ~1.0.
        assert spatial_locality_score(transfers) < 0.3

    def test_chunk_grain_locality_leaks(self):
        transfers = self._observe_hide(self._streaming_records())
        # ...but the stream still walks chunk after chunk in plain sight.
        assert chunk_locality_score(transfers) > 0.9

    def test_temporal_reuse_leaks_within_epoch(self):
        hot = [
            TraceRecord(gap_ns=50.0, address=(i % 8) * 64, is_write=False)
            for i in range(100)
        ]
        transfers = self._observe_hide(hot)
        # Same permuted address repeats until the chunk re-permutes.
        assert ciphertext_repeat_fraction(transfers) > 0.5
