"""Model-based stateful testing of the functional encrypted stacks.

Hypothesis drives random operation sequences against the ObfusMem
functional channel and both ORAMs, comparing every read against a plain
dict reference model and re-checking structural invariants along the way.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.crypto.rng import DeterministicRng
from repro.mem.request import BLOCK_SIZE_BYTES
from repro.oram.path_oram import PathOram
from repro.oram.ring_oram import RingOram

ADDRESSES = st.integers(min_value=0, max_value=31)
PAYLOADS = st.binary(min_size=BLOCK_SIZE_BYTES, max_size=BLOCK_SIZE_BYTES)
SMALL_PAYLOADS = st.binary(min_size=1, max_size=16)


class ObfusMemMachine(RuleBasedStateMachine):
    """The encrypted channel must be observationally a dict."""

    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        rng = DeterministicRng(seed)
        self.stack = FunctionalObfusMem(
            session_key=rng.fork("s").token_bytes(16),
            memory_key=rng.fork("m").token_bytes(16),
            rng=rng,
            auth=AuthMode.ENCRYPT_AND_MAC,
        )
        self.reference = {}

    @rule(block=ADDRESSES, payload=PAYLOADS)
    def write(self, block, payload):
        address = block * BLOCK_SIZE_BYTES
        self.stack.write(address, payload)
        self.reference[address] = payload

    @rule(block=ADDRESSES)
    def read(self, block):
        address = block * BLOCK_SIZE_BYTES
        if address in self.reference:
            assert self.stack.read(address) == self.reference[address]

    @invariant()
    def counters_synchronized(self):
        if not hasattr(self, "stack"):
            return
        assert self.stack.codec.request_counter == (
            self.stack.memory_side.codec.request_counter
        )

    @invariant()
    def array_never_holds_plaintext(self):
        if not hasattr(self, "stack") or not self.reference:
            return
        plaintexts = set(self.reference.values())
        for stored in self.stack.memory_side.array_snapshot().values():
            assert stored not in plaintexts


class PathOramMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        self.oram = PathOram(32, DeterministicRng(seed), stash_limit=512)
        self.reference = {}

    @rule(block=ADDRESSES, payload=SMALL_PAYLOADS)
    def write(self, block, payload):
        self.oram.write(block, payload)
        self.reference[block] = payload

    @rule(block=ADDRESSES)
    def read(self, block):
        assert self.oram.read(block) == self.reference.get(block)

    @invariant()
    def structural_invariant(self):
        if hasattr(self, "oram"):
            self.oram.check_invariant()


class RingOramMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        self.oram = RingOram(32, DeterministicRng(seed), stash_limit=512)
        self.reference = {}

    @rule(block=ADDRESSES, payload=SMALL_PAYLOADS)
    def write(self, block, payload):
        self.oram.write(block, payload)
        self.reference[block] = payload

    @rule(block=ADDRESSES)
    def read(self, block):
        assert self.oram.read(block) == self.reference.get(block)

    @invariant()
    def structural_invariant(self):
        if hasattr(self, "oram"):
            self.oram.check_invariant()


TestObfusMemMachine = ObfusMemMachine.TestCase
TestObfusMemMachine.settings = settings(max_examples=12, stateful_step_count=15, deadline=None)

TestPathOramMachine = PathOramMachine.TestCase
TestPathOramMachine.settings = settings(max_examples=12, stateful_step_count=20, deadline=None)

TestRingOramMachine = RingOramMachine.TestCase
TestRingOramMachine.settings = settings(max_examples=12, stateful_step_count=20, deadline=None)
