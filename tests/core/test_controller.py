"""ObfusMem timing controller: pairing, substitution, channel injection."""

import pytest

from repro.core.config import (
    AuthMode,
    ChannelInjection,
    ObfusMemConfig,
)
from repro.core.controller import ObfusMemController
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, MemoryBus
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry


def make_stack(channels=1, config=None, bus=None):
    engine = Engine()
    stats = StatRegistry()
    mapping = AddressMapping(channels=channels)
    memory = MemorySystem(engine, mapping, stats, bus=bus)
    controller = ObfusMemController(
        engine, memory, config or ObfusMemConfig(), stats, DeterministicRng(1)
    )
    return engine, stats, controller


def issue(engine, controller, request):
    done = []
    request.issue_time_ps = engine.now_ps
    controller.issue(request, lambda r: done.append(r))
    engine.run()
    return done


class TestPairing:
    def test_read_gets_dummy_write_escort(self):
        engine, stats, controller = make_stack()
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("channel0").get("reads") == 1
        assert stats.group("channel0").get("dummy_writes") == 1

    def test_write_gets_dummy_read_escort(self):
        engine, stats, controller = make_stack()
        issue(engine, controller, MemoryRequest(0, RequestType.WRITE))
        assert stats.group("channel0").get("writes") == 1
        assert stats.group("channel0").get("dummy_reads") == 1

    def test_every_access_is_read_then_write_on_the_wire(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_stack(bus=bus)
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        types = [t.plaintext_is_write for t in observer.command_transfers()]
        assert sorted(types) == [False, True]

    def test_dummy_targets_reserved_block(self):
        engine, stats, controller = make_stack()
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        # Droppable fixed-address dummies never touch the array.
        assert stats.group("pcm0").get("row_buffer_accesses") == 1  # the read only

    def test_dummy_issue_rejected(self):
        engine, _, controller = make_stack()
        with pytest.raises(ConfigurationError):
            controller.issue(MemoryRequest(0, RequestType.READ, is_dummy=True), None)


class TestSubstitution:
    def test_pending_write_substitutes_for_dummy(self):
        engine, stats, controller = make_stack()
        # Enqueue a real write, then a read before the engine runs: the
        # write is still pending and becomes the read's write half.
        controller.issue(MemoryRequest(64, RequestType.WRITE), None)
        controller.issue(MemoryRequest(0, RequestType.READ), None)
        engine.run()
        assert stats.group("obfusmem").get("dummy_writes_substituted") == 1
        assert stats.group("channel0").get("dummy_writes") == 0

    def test_pending_read_substitutes_for_dummy_read(self):
        engine, stats, controller = make_stack()
        controller.issue(MemoryRequest(0, RequestType.READ), lambda r: None)
        controller.issue(MemoryRequest(64, RequestType.WRITE), None)
        engine.run()
        assert stats.group("obfusmem").get("dummy_reads_substituted") == 1

    def test_substitution_disabled(self):
        config = ObfusMemConfig(substitute_dummies=False)
        engine, stats, controller = make_stack(config=config)
        controller.issue(MemoryRequest(64, RequestType.WRITE), None)
        controller.issue(MemoryRequest(0, RequestType.READ), None)
        engine.run()
        assert stats.group("channel0").get("dummy_writes") == 1
        assert stats.group("channel0").get("dummy_reads") == 1


class TestChannelInjection:
    def test_unopt_floods_all_other_channels(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.UNOPT)
        engine, stats, controller = make_stack(channels=4, config=config)
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("obfusmem").get("channel_pairs_injected") == 3
        for channel in (1, 2, 3):
            group = stats.group(f"channel{channel}")
            assert group.get("dummy_reads") == 1
            assert group.get("dummy_writes") == 1

    def test_opt_skips_busy_channels(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.OPT)
        engine, stats, controller = make_stack(channels=2, config=config)
        # Make channel 1 busy with a direct enqueue, then issue on channel 0.
        controller.memory.channels[1].enqueue(
            MemoryRequest(1024, RequestType.READ), None
        )
        controller.issue(MemoryRequest(0, RequestType.READ), None)
        engine.run()
        assert stats.group("obfusmem").get("injections_skipped_busy") == 1
        assert stats.group("obfusmem").get("channel_pairs_injected") == 0

    def test_none_injection_leaks(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.NONE)
        engine, stats, controller = make_stack(channels=4, config=config)
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("obfusmem").get("channel_pairs_injected") == 0

    def test_single_channel_never_injects(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.UNOPT)
        engine, stats, controller = make_stack(channels=1, config=config)
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("obfusmem").get("channel_pairs_injected") == 0


class TestPadAccounting:
    def test_sixteen_pads_per_access(self):
        engine, stats, controller = make_stack()
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("obfusmem").get("pads_total") == 16

    def test_injection_adds_pads(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.UNOPT)
        engine, stats, controller = make_stack(channels=4, config=config)
        issue(engine, controller, MemoryRequest(0, RequestType.READ))
        # 16 for the access + 16 per injected pair on 3 channels = 64,
        # matching the paper's worst-case 4-channel figure.
        assert stats.group("obfusmem").get("pads_total") == 64


class TestAuthentication:
    def test_auth_slows_requests(self):
        plain_engine, _, plain = make_stack()
        plain_latency = issue(plain_engine, plain, MemoryRequest(0, RequestType.READ))[
            0
        ].latency_ps
        auth_config = ObfusMemConfig(auth=AuthMode.ENCRYPT_AND_MAC)
        auth_engine, _, auth = make_stack(config=auth_config)
        auth_latency = issue(auth_engine, auth, MemoryRequest(0, RequestType.READ))[
            0
        ].latency_ps
        assert auth_latency > plain_latency

    def test_encrypt_then_mac_slower_than_encrypt_and_mac(self):
        eam_engine, _, eam = make_stack(config=ObfusMemConfig(auth=AuthMode.ENCRYPT_AND_MAC))
        eam_latency = issue(eam_engine, eam, MemoryRequest(0, RequestType.READ))[0].latency_ps
        etm_engine, _, etm = make_stack(
            config=ObfusMemConfig(auth=AuthMode.ENCRYPT_THEN_MAC)
        )
        etm_latency = issue(etm_engine, etm, MemoryRequest(0, RequestType.READ))[0].latency_ps
        assert etm_latency > eam_latency

    def test_auth_widens_command_slots(self):
        assert ObfusMemConfig(auth=AuthMode.ENCRYPT_AND_MAC).command_slots == 2
        assert ObfusMemConfig().command_slots == 1


class TestWireOpacity:
    def test_wire_bytes_are_unique_ciphertext(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_stack(bus=bus)
        for i in range(20):
            controller.issue(MemoryRequest(0, RequestType.READ), None)
        engine.run()
        encodings = [t.wire_bytes for t in observer.command_transfers()]
        assert len(set(encodings)) == len(encodings)  # never repeats
