"""ObfusMem controller details: dummy dropping modes, ETM path, multichannel
pad accounting, wire data uniqueness."""


from repro.core.config import (
    AuthMode,
    ChannelInjection,
    DummyAddressPolicy,
    ObfusMemConfig,
)
from repro.core.controller import ObfusMemController
from repro.crypto.rng import DeterministicRng
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, MemoryBus
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry


def make_stack(channels=1, config=None, bus=None):
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(channels=channels), stats, bus=bus)
    controller = ObfusMemController(
        engine, memory, config or ObfusMemConfig(), stats, DeterministicRng(21)
    )
    return engine, stats, controller


def drain(engine, controller, requests):
    done = []
    for request in requests:
        request.issue_time_ps = engine.now_ps
        controller.issue(request, (lambda r: done.append(r)) if request.is_read else None)
    engine.run()
    return done


class TestDummyDropModes:
    def test_default_drops_dummies(self):
        engine, stats, controller = make_stack()
        drain(engine, controller, [MemoryRequest(0, RequestType.READ)])
        assert stats.group("channel0").get("dummy_writes_dropped") == 1
        assert stats.group("pcm0").get("array_writes") == 0

    def test_undropped_dummies_touch_the_array(self):
        config = ObfusMemConfig(drop_dummies=False)
        engine, stats, controller = make_stack(config=config)
        drain(engine, controller, [MemoryRequest(0, RequestType.READ)])
        assert stats.group("channel0").get("dummy_writes_dropped") == 0
        # The undropped dummy write dirtied a row buffer (array work).
        assert stats.group("pcm0").get("row_buffer_accesses") >= 2

    def test_original_policy_dummy_mirrors_address(self):
        config = ObfusMemConfig(dummy_policy=DummyAddressPolicy.ORIGINAL)
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_stack(config=config, bus=bus)
        drain(engine, controller, [MemoryRequest(0x8000, RequestType.READ)])
        dummy = [t for t in observer.command_transfers() if t.is_dummy][0]
        assert dummy.plaintext_address == 0x8000


class TestEncryptThenMacPath:
    def test_etm_response_also_delayed(self):
        etm_engine, _, etm = make_stack(
            config=ObfusMemConfig(auth=AuthMode.ENCRYPT_THEN_MAC)
        )
        etm_done = drain(etm_engine, etm, [MemoryRequest(0, RequestType.READ)])
        plain_engine, _, plain = make_stack()
        plain_done = drain(plain_engine, plain, [MemoryRequest(0, RequestType.READ)])
        # ETM pays the full MD5 fill twice (request and response paths).
        md5_ps = ObfusMemConfig().engines.md5_latency_ps
        assert etm_done[0].latency_ps >= plain_done[0].latency_ps + 2 * md5_ps

    def test_verify_exposure_scales_with_md5_depth(self):
        shallow = ObfusMemConfig(auth=AuthMode.ENCRYPT_THEN_MAC)
        assert shallow.auth_verify_exposed_ps() == shallow.engines.md5_latency_ps


class TestMultiChannelAccounting:
    def test_pads_accounted_per_channel(self):
        config = ObfusMemConfig(channel_injection=ChannelInjection.UNOPT)
        engine, stats, controller = make_stack(channels=2, config=config)
        drain(engine, controller, [MemoryRequest(0, RequestType.READ)])
        group = stats.group("obfusmem")
        assert group.get("pads_processor_ch0") == 10
        assert group.get("pads_memory_ch0") == 6
        # The injected pair on channel 1 carries its own 16 pads.
        assert group.get("pads_processor_ch1") == 10
        assert group.get("pads_memory_ch1") == 6

    def test_requests_route_to_their_channel(self):
        engine, stats, controller = make_stack(channels=2)
        drain(
            engine,
            controller,
            [
                MemoryRequest(0, RequestType.READ),  # channel 0
                MemoryRequest(1024, RequestType.READ),  # channel 1
            ],
        )
        assert stats.group("channel0").get("reads") == 1
        assert stats.group("channel1").get("reads") == 1


class TestWireOpacity:
    def test_data_bursts_unique_too(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_stack(bus=bus)
        drain(
            engine,
            controller,
            [MemoryRequest(i * 64, RequestType.WRITE) for i in range(10)],
        )
        payloads = [t.wire_bytes for t in observer.data_transfers()]
        assert len(set(payloads)) == len(payloads)

    def test_dummy_and_real_commands_same_length(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, controller = make_stack(bus=bus)
        drain(engine, controller, [MemoryRequest(0, RequestType.READ)])
        lengths = {len(t.wire_bytes) for t in observer.command_transfers()}
        assert len(lengths) == 1  # indistinguishable by size
