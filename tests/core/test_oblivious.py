"""Timing-oblivious shaper (§6.2 extension): regularity and correctness."""

import pytest

from repro.analysis.leakage import timing_regularity
from repro.core.config import ChannelInjection, ObfusMemConfig
from repro.core.controller import ObfusMemController
from repro.core.oblivious import TimingObliviousShaper
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, MemoryBus
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry

OBLIVIOUS_CONFIG = ObfusMemConfig(
    channel_injection=ChannelInjection.NONE, drop_dummies=False
)


def make_shaped_stack(epoch_ns=100.0, bus=None, config=OBLIVIOUS_CONFIG):
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(), stats, bus=bus)
    controller = ObfusMemController(engine, memory, config, stats, DeterministicRng(3))
    shaper = TimingObliviousShaper(engine, controller, stats, epoch_ns=epoch_ns)
    return engine, stats, shaper


class TestConfiguration:
    def test_requires_injection_none(self):
        with pytest.raises(ConfigurationError, match="ChannelInjection.NONE"):
            make_shaped_stack(
                config=ObfusMemConfig(
                    channel_injection=ChannelInjection.OPT, drop_dummies=False
                )
            )

    def test_requires_undropped_dummies(self):
        with pytest.raises(ConfigurationError, match="drop_dummies"):
            make_shaped_stack(
                config=ObfusMemConfig(channel_injection=ChannelInjection.NONE)
            )

    def test_rejects_bad_epoch(self):
        with pytest.raises(ConfigurationError):
            make_shaped_stack(epoch_ns=0)


class TestShaping:
    def test_requests_complete(self):
        engine, _, shaper = make_shaped_stack()
        done = []
        for i in range(10):
            request = MemoryRequest(i * 64, RequestType.READ)
            request.issue_time_ps = 0
            shaper.issue(request, lambda r: done.append(r))
        engine.run()
        assert len(done) == 10

    def test_one_request_per_epoch(self):
        engine, stats, shaper = make_shaped_stack(epoch_ns=100.0)
        for i in range(5):
            shaper.issue(MemoryRequest(i * 64, RequestType.READ), lambda r: None)
        engine.run()
        # 5 real slots, plus linger dummies at the tail.
        assert stats.group("oblivious").get("slots_real") == 5
        assert stats.group("oblivious").get("slots_dummy") >= 1

    def test_empty_slots_filled_with_undropped_dummies(self):
        engine, stats, shaper = make_shaped_stack()
        shaper.issue(MemoryRequest(0, RequestType.READ), lambda r: None)
        engine.run()
        # Linger dummies hit the array (non-droppable): row-buffer work
        # beyond the single real read happened.
        assert stats.group("pcm0").get("row_buffer_accesses") > 1

    def test_slot_utilization(self):
        engine, _, shaper = make_shaped_stack()
        for i in range(8):
            shaper.issue(MemoryRequest(i * 64, RequestType.READ), lambda r: None)
        engine.run()
        assert 0 < shaper.slot_utilization < 1


class TestTimingRegularity:
    def _command_regularity(self, shaped: bool) -> float:
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine = Engine()
        stats = StatRegistry()
        memory = MemorySystem(engine, AddressMapping(), stats, bus=bus)
        config = OBLIVIOUS_CONFIG if shaped else ObfusMemConfig()
        controller = ObfusMemController(engine, memory, config, stats, DeterministicRng(3))
        port = (
            TimingObliviousShaper(
                engine, controller, stats, epoch_ns=100.0, linger_epochs=20
            )
            if shaped
            else controller
        )
        rng = DeterministicRng(8)
        time = 0
        for i in range(40):
            # Bursty demand: clustered then sparse arrivals.
            time += ns_to_ps(rng.choice([5.0, 5.0, 5.0, 900.0]))
            address = rng.randrange(1 << 20) * 64

            def send(address=address):
                port.issue(MemoryRequest(address, RequestType.READ), lambda r: None)

            engine.schedule_at(time, send)
        engine.run()
        return timing_regularity(observer.transfers)

    def test_shaper_regularizes_bursty_traffic(self):
        bursty = self._command_regularity(shaped=False)
        shaped = self._command_regularity(shaped=True)
        assert shaped < 0.5 * bursty
        assert shaped < 0.6
