"""Functional ObfusMem stack: end-to-end crypto behaviour of Figure 3."""

import pytest

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.bus import BusObserver, MemoryBus


def make_stack(auth=AuthMode.ENCRYPT_AND_MAC, bus=None, interceptor=None):
    rng = DeterministicRng(11)
    return FunctionalObfusMem(
        session_key=rng.fork("session").token_bytes(16),
        memory_key=rng.fork("memory").token_bytes(16),
        rng=rng,
        auth=auth,
        bus=bus,
        interceptor=interceptor,
    )


class TestRoundtrips:
    @pytest.mark.parametrize(
        "auth", [AuthMode.NONE, AuthMode.ENCRYPT_AND_MAC, AuthMode.ENCRYPT_THEN_MAC]
    )
    def test_write_read(self, auth):
        stack = make_stack(auth=auth)
        stack.write(0x1000, b"A" * 64)
        assert stack.read(0x1000) == b"A" * 64

    def test_multiple_blocks(self):
        stack = make_stack()
        blocks = {i * 64: bytes([i]) * 64 for i in range(1, 20)}
        for address, data in blocks.items():
            stack.write(address, data)
        for address, data in blocks.items():
            assert stack.read(address) == data

    def test_overwrite(self):
        stack = make_stack()
        stack.write(0x40, b"1" * 64)
        stack.write(0x40, b"2" * 64)
        assert stack.read(0x40) == b"2" * 64

    def test_unaligned_address_normalized(self):
        stack = make_stack()
        stack.write(0x1005, b"Z" * 64)
        assert stack.read(0x1000) == b"Z" * 64

    def test_unaligned_dummy_address_rejected(self):
        rng = DeterministicRng(0)
        with pytest.raises(ConfigurationError):
            FunctionalObfusMem(
                rng.token_bytes(16), rng.token_bytes(16), rng, dummy_address=3
            )


class TestDoubleEncryption:
    def test_memory_array_never_sees_plaintext(self):
        stack = make_stack()
        secret = b"top secret block of data".ljust(64, b"!")
        stack.write(0x2000, secret)
        for stored in stack.memory_side.array_snapshot().values():
            assert stored != secret

    def test_bus_never_carries_at_rest_ciphertext(self):
        """Observation 1: the second encryption hides even ciphertext."""
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        stack = make_stack(bus=bus)
        stack.write(0x2000, b"S" * 64)
        stored = list(stack.memory_side.array_snapshot().values())[0]
        wire_payloads = {t.wire_bytes for t in observer.data_transfers()}
        assert stored not in wire_payloads

    def test_rereading_same_block_looks_different_on_wire(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        stack = make_stack(bus=bus)
        stack.write(0x40, b"D" * 64)
        stack.read(0x40)
        stack.read(0x40)
        commands = [t.wire_bytes for t in observer.command_transfers()]
        assert len(set(commands)) == len(commands)
        data = [t.wire_bytes for t in observer.data_transfers()]
        assert len(set(data)) == len(data)


class TestDummies:
    def test_dummies_are_dropped_at_memory(self):
        stack = make_stack()
        stack.write(0x40, b"w" * 64)  # dummy read dropped
        stack.read(0x40)  # dummy write dropped
        assert stack.memory_side.dummies_dropped == 2

    def test_dummy_writes_cause_no_cell_writes(self):
        stack = make_stack()
        for _ in range(10):
            stack.read(0x40)
        assert stack.memory_side.cell_writes == 0

    def test_wire_shows_balanced_types(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        stack = make_stack(bus=bus)
        for i in range(10):
            stack.read(i * 64)  # an all-read workload
        commands = observer.command_transfers()
        writes = sum(1 for t in commands if t.plaintext_is_write)
        assert writes == len(commands) // 2  # half the wire traffic is writes


class TestCounterConsumption:
    def test_six_request_pads_per_operation(self):
        """Figure 3: the request-stream counter advances by six per op."""
        stack = make_stack()
        stack.write(0x40, b"x" * 64)
        assert stack.codec.request_counter == 6
        assert stack.memory_side.codec.request_counter == 6
        stack.read(0x40)
        assert stack.codec.request_counter == 12
        assert stack.memory_side.codec.request_counter == 12

    def test_response_pads_only_for_real_reads(self):
        stack = make_stack()
        stack.write(0x40, b"x" * 64)  # dummy read returns raw garbage
        assert stack.codec.response_counter == 0
        stack.read(0x40)
        assert stack.codec.response_counter == 4
