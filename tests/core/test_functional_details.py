"""Functional stack details: ETM mode, interceptor plumbing, transcripts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.crypto.rng import DeterministicRng
from repro.errors import IntegrityError
from repro.sim.engine import Engine


def make_stack(auth=AuthMode.ENCRYPT_AND_MAC, interceptor=None, seed=55):
    rng = DeterministicRng(seed)
    return FunctionalObfusMem(
        session_key=rng.fork("s").token_bytes(16),
        memory_key=rng.fork("m").token_bytes(16),
        rng=rng,
        auth=auth,
        interceptor=interceptor,
    )


class TestEncryptThenMacFunctional:
    def test_roundtrip(self):
        stack = make_stack(auth=AuthMode.ENCRYPT_THEN_MAC)
        stack.write(0x100, b"q" * 64)
        assert stack.read(0x100) == b"q" * 64

    def test_ciphertext_tamper_detected(self):
        def flip(kind, direction, payload):
            if kind == "command" and not hasattr(flip, "done"):
                flip.done = True
                return payload[:-1] + bytes([payload[-1] ^ 1])
            return payload

        stack = make_stack(auth=AuthMode.ENCRYPT_THEN_MAC, interceptor=flip)
        with pytest.raises(IntegrityError):
            stack.write(0x100, b"q" * 64)


class TestInterceptorPlumbing:
    def test_interceptor_sees_every_kind(self):
        seen = set()

        def spy(kind, direction, payload):
            seen.add((kind, direction))
            return payload

        stack = make_stack(interceptor=spy)
        stack.write(0x40, b"a" * 64)
        stack.read(0x40)
        assert ("command", "to_memory") in seen
        assert ("data", "to_memory") in seen
        assert ("response", "to_processor") in seen

    def test_response_tamper_corrupts_but_decodes(self):
        """Flipping a read response garbles the data; the bus MAC does not
        cover data (Observation 4), so corruption flows to the Merkle
        layer (here: visible as a wrong plaintext)."""

        responses_seen = [0]

        def flip(kind, direction, payload):
            if kind == "response":
                responses_seen[0] += 1
                # Response 1 is the write's dummy-read garbage; response 2
                # is the real read's data burst — tamper with that one.
                if responses_seen[0] == 2:
                    return bytes(b ^ 0xFF for b in payload)
            return payload

        stack = make_stack(interceptor=flip)
        stack.write(0x40, b"a" * 64)
        data = stack.read(0x40)
        assert data != b"a" * 64

    def test_transcript_records_originals(self):
        stack = make_stack()
        stack.write(0x40, b"a" * 64)
        kinds = [message.kind for message in stack.transcript]
        assert kinds == ["command", "response", "command", "data"]


class TestInjectDummyPair:
    def test_pair_preserves_sync_and_data(self):
        stack = make_stack()
        stack.write(0x40, b"z" * 64)
        for _ in range(5):
            stack.inject_dummy_pair()
        assert stack.read(0x40) == b"z" * 64
        assert stack.codec.request_counter == stack.memory_side.codec.request_counter

    def test_pair_consumes_six_request_pads(self):
        stack = make_stack()
        before = stack.codec.request_counter
        stack.inject_dummy_pair()
        assert stack.codec.request_counter == before + 6

    def test_pairs_are_dropped(self):
        stack = make_stack()
        stack.inject_dummy_pair()
        stack.inject_dummy_pair()
        assert stack.memory_side.dummies_dropped == 4  # 2 reads + 2 writes


@settings(max_examples=15, deadline=None)
@given(
    times=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40)
)
def test_engine_executes_in_nondecreasing_time(times):
    """Property: whatever the schedule order, callbacks fire in time order."""
    engine = Engine()
    fired = []
    for time in times:
        engine.schedule_at(time, lambda t=time: fired.append((engine.now_ps, t)))
    engine.run()
    observed = [now for now, _ in fired]
    assert observed == sorted(observed)
    assert sorted(t for _, t in fired) == sorted(times)
    for now, t in fired:
        assert now == t
