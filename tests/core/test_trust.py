"""Trust architecture: the three bootstrapping approaches of §3.1."""

import pytest

from repro.core.session import SessionKeyTable
from repro.core.trust import (
    Manufacturer,
    MemoryChip,
    ProcessorChip,
    SystemIntegrator,
    bootstrap_naive,
    bootstrap_trusted_integrator,
    bootstrap_untrusted_integrator,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, TrustError


@pytest.fixture
def parts():
    rng = DeterministicRng(31337)
    processor_vendor = Manufacturer("cpu-vendor", rng)
    memory_vendor = Manufacturer("mem-vendor", rng)
    processor = ProcessorChip(processor_vendor)
    memories = [MemoryChip(memory_vendor, channel=c) for c in range(2)]
    return rng, processor, memories


class TestManufacturer:
    def test_vouches_for_own_chips(self, parts):
        _, processor, memories = parts
        assert processor.manufacturer.vouches_for(processor.public_key)
        assert not processor.manufacturer.vouches_for(memories[0].public_key)

    def test_chips_have_distinct_identities(self, parts):
        _, processor, memories = parts
        keys = {processor.public_key, memories[0].public_key, memories[1].public_key}
        assert len(keys) == 3


class TestNaive:
    def test_naive_bootstrap_without_attacker(self, parts):
        rng, processor, memories = parts
        table = bootstrap_naive(processor, memories, rng)
        assert isinstance(table, SessionKeyTable)
        assert table.channels == [0, 1]
        assert table.key_for(0) != table.key_for(1)


class TestTrustedIntegrator:
    def test_honest_integration_succeeds(self, parts):
        rng, processor, memories = parts
        SystemIntegrator(rng).integrate(processor, memories)
        table = bootstrap_trusted_integrator(processor, memories, rng)
        assert len(table) == 2

    def test_unintegrated_system_fails(self, parts):
        rng, processor, memories = parts
        with pytest.raises(TrustError):
            bootstrap_trusted_integrator(processor, memories, rng)

    def test_malicious_integrator_breaks_signature_check(self, parts):
        rng, processor, memories = parts
        SystemIntegrator(rng, malicious=True).integrate(processor, memories)
        with pytest.raises(TrustError):
            bootstrap_trusted_integrator(processor, memories, rng)

    def test_spare_registers_exhaust(self, parts):
        rng, processor, memories = parts
        chip = memories[0]
        for _ in range(4):  # DEFAULT_SPARE_REGISTERS
            chip.burn_peer_key(processor.public_key)
        with pytest.raises(TrustError):
            chip.burn_peer_key(processor.public_key)

    def test_component_upgrade_uses_spare_register(self, parts):
        rng, processor, memories = parts
        SystemIntegrator(rng).integrate(processor, memories)
        # Upgrade: a new memory chip is integrated post-deployment.
        new_memory = MemoryChip(memories[0].manufacturer, channel=2)
        processor.burn_peer_key(new_memory.public_key)
        new_memory.burn_peer_key(processor.public_key)
        table = bootstrap_trusted_integrator(
            processor, memories + [new_memory], rng
        )
        assert table.channels == [0, 1, 2]


class TestUntrustedIntegrator:
    def test_attestation_accepts_honest_integration(self, parts):
        rng, processor, memories = parts
        SystemIntegrator(rng).integrate(processor, memories)
        table = bootstrap_untrusted_integrator(processor, memories, rng)
        assert len(table) == 2

    def test_attestation_catches_malicious_integrator(self, parts):
        rng, processor, memories = parts
        SystemIntegrator(rng, malicious=True).integrate(processor, memories)
        with pytest.raises(TrustError, match="wrong key"):
            bootstrap_untrusted_integrator(processor, memories, rng)

    def test_non_capable_memory_rejected(self, parts):
        rng, processor, _ = parts
        legacy = MemoryChip(
            Manufacturer("legacy-vendor", rng), channel=0, obfusmem_capable=False
        )
        SystemIntegrator(rng).integrate(processor, [legacy])
        with pytest.raises(TrustError, match="not ObfusMem-capable"):
            bootstrap_untrusted_integrator(processor, [legacy], rng)


class TestSessionKeyTable:
    def test_generate(self):
        table = SessionKeyTable.generate(4, DeterministicRng(1))
        assert table.channels == [0, 1, 2, 3]
        assert len({table.key_for(c) for c in range(4)}) == 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionKeyTable({})

    def test_bad_key_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionKeyTable({0: b"short"})

    def test_missing_channel_rejected(self):
        table = SessionKeyTable.generate(1, DeterministicRng(1))
        with pytest.raises(ConfigurationError):
            table.key_for(5)
