"""Measured wire metrics agree with the registry's declared traits.

:func:`repro.analysis.expected_leakage` derives what the Table 4 metrics
should report from a scheme's stage traits alone.  These tests close the
loop: simulate each scheme with a bus observer attached and check the
measurements land where the declaration says they must.
"""

import pytest

from repro.analysis import (
    chunk_locality_score,
    ciphertext_repeat_fraction,
    expected_leakage,
    spatial_locality_score,
    type_inference_accuracy,
)
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.cpu.trace import Trace
from repro.mem.bus import BusObserver, MemoryBus
from repro.system.config import MachineConfig
from repro.system.simulator import run_trace

SCHEMES = ["unprotected", "hide", "obfusmem", "obfusmem_auth", "hide_encrypted"]


@pytest.fixture(scope="module")
def observations():
    """Bus transfers per scheme for one bwaves trace (module-cached).

    The base trace is replayed twice so there is genuine temporal reuse
    for the repeat metric to catch: every address of the first half comes
    back in the second, well inside HIDE's re-permutation interval.
    """
    profile = SPEC_PROFILES["bwaves"]
    base = make_trace(profile, 400, seed=7)
    trace = Trace(
        name=base.name,
        records=base.records * 2,
        instructions_per_request=base.instructions_per_request,
    )
    captured = {}
    for name in SCHEMES:
        observer = BusObserver()
        bus = MemoryBus()
        bus.attach(observer)
        run_trace(
            trace,
            name,
            machine=MachineConfig(),
            window=profile.window,
            seed=7,
            bus=bus,
        )
        captured[name] = observer.transfers
    return captured


@pytest.mark.parametrize("name", SCHEMES)
def test_measurements_match_declared_traits(observations, name):
    expected = expected_leakage(name)
    transfers = observations[name]
    assert expected.wire_observable
    assert transfers, f"{name}: wire-observable scheme produced no transfers"

    spatial = spatial_locality_score(transfers)
    if expected.spatial_hidden:
        assert spatial < 0.3
    else:
        assert spatial > 0.5

    chunk = chunk_locality_score(transfers)
    if expected.chunk_hidden:
        assert chunk < 0.1
    else:
        assert chunk > 0.7

    repeats = ciphertext_repeat_fraction(transfers)
    if expected.temporal_hidden:
        assert repeats == 0.0
    else:
        assert repeats > 0.0

    accuracy = type_inference_accuracy(transfers)
    assert accuracy == pytest.approx(expected.type_accuracy, abs=0.05)


def test_oram_expectation_is_total_by_construction():
    expected = expected_leakage("oram")
    assert not expected.wire_observable
    assert expected.spatial_hidden and expected.temporal_hidden
    assert expected.type_accuracy == 0.5
    assert not expected.timing_bursts


@pytest.mark.parametrize("name", ["oram", "oram_ring", "pyramid", "palermo"])
def test_every_oram_backend_expectation_is_total(name):
    """All ORAM backends hide the access pattern totally by construction."""
    expected = expected_leakage(name)
    assert not expected.wire_observable
    assert expected.spatial_hidden and expected.chunk_hidden
    assert expected.temporal_hidden and expected.footprint_hidden
    assert expected.type_accuracy == 0.5


def test_bursty_maintenance_flagged_per_backend():
    """Ring evictions and Pyramid rebuilds are countable timing bursts;
    the Path baseline and Palermo's pipelined write-backs are not."""
    assert expected_leakage("oram_ring").timing_bursts
    assert expected_leakage("pyramid").timing_bursts
    assert not expected_leakage("palermo").timing_bursts
    assert not expected_leakage("oram").timing_bursts
    # Wire schemes never carry the flag: it describes opaque maintenance.
    assert not expected_leakage("obfusmem").timing_bursts
