"""The shared ``--list-schemes`` flag across every entry point."""

import pytest

from repro.__main__ import build_parser, main
from repro.schemes import format_scheme_list, scheme_names


class TestSchemeListing:
    def test_listing_covers_every_registered_scheme(self):
        listing = format_scheme_list()
        for name in scheme_names():
            assert name in listing
        assert "memory-encryption -> obfusmem -> pcm-channels" in listing

    def test_listing_includes_oram_backends_with_traits(self):
        """CLI discovery matches the registry: new backends + trait columns."""
        listing = format_scheme_list()
        assert "oram-ring" in listing
        assert "oram-pyramid" in listing
        assert "oram-palermo" in listing
        assert "opaque-backend,rebuild-bursts" in listing
        # The traitless baseline shows a placeholder, not an empty column.
        unprotected_line = next(
            line for line in listing.splitlines() if "unprotected" in line
        )
        assert " - " in unprotected_line

    def test_top_level_flag_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--list-schemes"])
        assert excinfo.value.code == 0
        assert "hide_encrypted" in capsys.readouterr().out

    def test_run_subcommand_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "bwaves", "--list-schemes"])
        assert excinfo.value.code == 0
        assert "protection schemes" in capsys.readouterr().out

    def test_experiment_cli_flag(self, capsys):
        from repro.experiments import related

        with pytest.raises(SystemExit) as excinfo:
            related.main(["--list-schemes"])
        assert excinfo.value.code == 0
        assert "obfusmem_auth" in capsys.readouterr().out

    def test_list_command_includes_schemes(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "protection schemes" in out
        assert "hide" in out

    def test_run_rejects_unknown_scheme_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "bwaves", "--level", "obfusmen"])
        assert "did you mean" in str(excinfo.value)
