"""Registry behaviour: lookup, validation, serialization, custom schemes."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import (
    JobSpec,
    result_from_jsonable,
    result_to_jsonable,
)
from repro.schemes import (
    ProtectionScheme,
    available_schemes,
    get_scheme,
    register,
    resolve_scheme,
    scheme_name_of,
    scheme_names,
    unregister,
)
from repro.schemes.registry import level_for
from repro.schemes.stages import (
    EncryptionStage,
    HideStage,
    ObfusMemStage,
    PcmChannelStage,
)
from repro.system.config import ProtectionLevel
from repro.system.simulator import run_benchmark
from repro.cpu.spec_profiles import SPEC_PROFILES


class TestLookup:
    def test_every_protection_level_is_registered(self):
        for level in ProtectionLevel:
            scheme = get_scheme(level.value)
            assert scheme.name == level.value

    def test_unknown_scheme_suggests_close_match(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scheme("obfusmen")
        message = str(excinfo.value)
        assert "obfusmen" in message
        assert "did you mean 'obfusmem'" in message

    def test_unknown_scheme_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scheme("zzz_not_a_scheme")
        assert "unprotected" in str(excinfo.value)

    def test_resolve_accepts_all_designators(self):
        by_enum = resolve_scheme(ProtectionLevel.OBFUSMEM)
        by_name = resolve_scheme("obfusmem")
        by_scheme = resolve_scheme(by_enum)
        assert by_enum is by_name is by_scheme

    def test_scheme_name_of(self):
        assert scheme_name_of(ProtectionLevel.ORAM) == "oram"
        assert scheme_name_of("hide") == "hide"
        assert scheme_name_of(get_scheme("hide")) == "hide"
        with pytest.raises(ConfigurationError):
            scheme_name_of(42)

    def test_level_for_round_trip(self):
        for level in ProtectionLevel:
            assert level_for(level.value) is level
        assert level_for("hide_encrypted") is None

    def test_listing_order_is_registration_order(self):
        names = scheme_names()
        assert names.index("unprotected") < names.index("obfusmem")
        assert [s.name for s in available_schemes()] == names


class TestValidation:
    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(get_scheme("obfusmem"))

    def test_replace_allows_reregistration(self):
        original = get_scheme("hide")
        register(original, replace=True)
        assert get_scheme("hide") is original

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError, match="no stages"):
            ProtectionScheme(name="empty", description="", stages=())

    def test_non_terminal_bottom_rejected(self):
        with pytest.raises(ConfigurationError, match="terminal"):
            ProtectionScheme(
                name="floating", description="", stages=(EncryptionStage(),)
            )

    def test_terminal_above_bottom_rejected(self):
        with pytest.raises(ConfigurationError, match="above the bottom"):
            ProtectionScheme(
                name="sandwich",
                description="",
                stages=(PcmChannelStage(), PcmChannelStage()),
            )

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError, match="identifier"):
            ProtectionScheme(
                name="not a name!", description="", stages=(PcmChannelStage(),)
            )


class TestMetadata:
    def test_stack_summary_reads_top_down(self):
        assert (
            get_scheme("obfusmem").stack_summary()
            == "memory-encryption -> obfusmem -> pcm-channels"
        )

    def test_traits_union_over_stages(self):
        scheme = get_scheme("obfusmem_auth")
        assert "authenticated" in scheme.traits
        assert "data-encrypted" in scheme.traits
        assert "authenticated" not in get_scheme("obfusmem").traits

    def test_stat_groups_deduplicated_top_down(self):
        groups = get_scheme("obfusmem").stat_groups
        assert groups.index("memenc") < groups.index("channel*")
        assert len(groups) == len(set(groups))

    def test_stat_sum_respects_group_patterns(self):
        scheme = get_scheme("unprotected")  # binds channel*/pcm* only
        stats = {
            "channel0.writes": 3.0,
            "channel1.writes": 4.0,
            "core0.writes": 100.0,  # not a memory-side group: excluded
            "pcm0.array_writes": 7.0,
        }
        assert scheme.stat_sum(stats, "writes") == 7.0
        assert scheme.stat_sum(stats, "array_writes") == 7.0
        assert scheme.stat_sum(stats, "missing") == 0.0


class TestSerialization:
    def test_jobspec_digest_matches_for_enum_and_name(self):
        by_enum = JobSpec(benchmark="bwaves", level=ProtectionLevel.OBFUSMEM)
        by_name = JobSpec(benchmark="bwaves", level="obfusmem")
        assert by_enum.digest() == by_name.digest()

    def test_jobspec_rejects_unknown_scheme_early(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            JobSpec(benchmark="bwaves", level="obfusmen")

    def test_result_round_trips_registry_only_scheme(self):
        result = run_benchmark(
            SPEC_PROFILES["bwaves"], "hide_encrypted", num_requests=200, seed=3
        )
        rebuilt = result_from_jsonable(result_to_jsonable(result))
        assert rebuilt.level == "hide_encrypted"
        assert rebuilt.execution_time_ns == result.execution_time_ns

    def test_result_round_trips_enum_level(self):
        result = run_benchmark(
            SPEC_PROFILES["bwaves"],
            ProtectionLevel.UNPROTECTED,
            num_requests=200,
            seed=3,
        )
        rebuilt = result_from_jsonable(result_to_jsonable(result))
        assert rebuilt.level is ProtectionLevel.UNPROTECTED


class TestCustomScheme:
    def test_custom_scheme_registers_builds_and_simulates(self):
        custom = ProtectionScheme(
            name="test_tiny_hide",
            description="in-test hybrid: small-chunk HIDE over encryption",
            stages=(
                EncryptionStage(),
                HideStage(chunk_bytes=16 << 10, repermute_interval=500),
                PcmChannelStage(),
            ),
        )
        register(custom)
        try:
            result = run_benchmark(
                SPEC_PROFILES["mcf"], "test_tiny_hide", num_requests=300, seed=11
            )
            repeat = run_benchmark(
                SPEC_PROFILES["mcf"], custom, num_requests=300, seed=11
            )
            assert result.execution_time_ns > 0
            # Name and scheme-object designators are the same simulation.
            assert repeat.execution_time_ns == result.execution_time_ns
        finally:
            unregister("test_tiny_hide")
        with pytest.raises(ConfigurationError):
            get_scheme("test_tiny_hide")

    def test_stage_stack_order_is_validated_at_build(self):
        # ObfusMem directly over the ORAM backend is a composition error the
        # stage itself rejects (it needs the PCM wire below it).
        from repro.schemes.stages import OramBackendStage

        bad = ProtectionScheme(
            name="test_bad_stack",
            description="obfusmem over an opaque backend",
            stages=(ObfusMemStage(), OramBackendStage()),
        )
        register(bad)
        try:
            with pytest.raises(ConfigurationError, match="PCM channel stage"):
                run_benchmark(
                    SPEC_PROFILES["bwaves"], "test_bad_stack", num_requests=50
                )
        finally:
            unregister("test_bad_stack")
