"""Tests for the protection-scheme registry and stage pipeline."""
