"""Leakage metrics: unprotected buses leak; ObfusMem buses do not."""

import pytest

from repro.analysis.leakage import (
    channel_coactivity,
    channel_entropy,
    ciphertext_repeat_fraction,
    footprint_leak,
    observed_write_share,
    spatial_locality_score,
    type_inference_accuracy,
    wire_address,
)
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.mem.bus import BusObserver, MemoryBus
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_trace

REQUESTS = 400


def observe(level, benchmark="bwaves", channels=1, trace=None, window=4):
    if trace is None:
        profile = SPEC_PROFILES[benchmark]
        trace = make_trace(profile, REQUESTS, seed=77)
        window = profile.window
    observer = BusObserver()
    bus = MemoryBus()
    bus.attach(observer)
    run_trace(
        trace,
        level,
        machine=MachineConfig(channels=channels),
        window=window,
        seed=77,
        bus=bus,
    )
    return observer.transfers


def hot_reuse_trace():
    """A workload hammering 32 blocks: heavy temporal reuse."""
    from repro.cpu.trace import Trace, TraceRecord

    records = [
        TraceRecord(gap_ns=100.0, address=(i % 32) * 64, is_write=(i % 5 == 0))
        for i in range(300)
    ]
    return Trace("hot", records)


@pytest.fixture(scope="module")
def unprotected_transfers():
    return observe(ProtectionLevel.UNPROTECTED)


@pytest.fixture(scope="module")
def obfusmem_transfers():
    return observe(ProtectionLevel.OBFUSMEM_AUTH)


class TestTemporalPattern:
    def test_unprotected_repeats_visible(self):
        transfers = observe(ProtectionLevel.UNPROTECTED, trace=hot_reuse_trace())
        assert ciphertext_repeat_fraction(transfers) > 0.5

    def test_obfusmem_never_repeats(self):
        transfers = observe(ProtectionLevel.OBFUSMEM_AUTH, trace=hot_reuse_trace())
        assert ciphertext_repeat_fraction(transfers) == 0.0

    def test_obfusmem_streaming_never_repeats(self, obfusmem_transfers):
        assert ciphertext_repeat_fraction(obfusmem_transfers) == 0.0


class TestSpatialPattern:
    def test_unprotected_streaming_locality_visible(self, unprotected_transfers):
        assert spatial_locality_score(unprotected_transfers) > 0.3

    def test_obfusmem_locality_hidden(self, obfusmem_transfers):
        assert spatial_locality_score(obfusmem_transfers) < 0.02


class TestTypeLeak:
    def test_unprotected_type_fully_visible(self, unprotected_transfers):
        assert type_inference_accuracy(unprotected_transfers) == pytest.approx(1.0)

    def test_obfusmem_type_hidden(self, obfusmem_transfers):
        assert type_inference_accuracy(obfusmem_transfers) == pytest.approx(
            0.5, abs=0.05
        )

    def test_obfusmem_write_share_balanced(self, obfusmem_transfers):
        assert observed_write_share(obfusmem_transfers) == pytest.approx(0.5, abs=0.1)


class TestFootprint:
    def test_unprotected_estimate_accurate(self):
        transfers = observe(ProtectionLevel.UNPROTECTED, trace=hot_reuse_trace())
        leak = footprint_leak(transfers)
        # 32 hot blocks; read and write encodings differ, so the attacker
        # counts at most 2 encodings per block — still within 2x.
        assert leak.true_unique == 32
        assert leak.observed_unique <= 2 * leak.true_unique

    def test_obfusmem_estimate_useless(self):
        transfers = observe(ProtectionLevel.OBFUSMEM_AUTH, trace=hot_reuse_trace())
        leak = footprint_leak(transfers)
        # Every command looks fresh: the estimate degenerates to ~#accesses.
        assert leak.observed_unique == leak.total_commands
        assert leak.relative_error > 5.0


class TestInterChannel:
    def test_unprotected_channels_uncoordinated(self):
        transfers = observe(ProtectionLevel.UNPROTECTED, channels=4)
        assert channel_coactivity(transfers, 4) < 0.9

    def test_obfusmem_opt_channels_coactive(self):
        transfers = observe(ProtectionLevel.OBFUSMEM, channels=4)
        assert channel_coactivity(transfers, 4) > 0.9

    def test_channel_entropy_near_uniform_with_injection(self):
        transfers = observe(ProtectionLevel.OBFUSMEM, channels=4)
        assert channel_entropy(transfers, 4) > 0.9

    def test_single_channel_trivially_uniform(self, obfusmem_transfers):
        assert channel_entropy(obfusmem_transfers, 1) == 1.0


class TestWireAddress:
    def test_unprotected_wire_address_decodes(self, unprotected_transfers):
        commands = [t for t in unprotected_transfers if t.plaintext_address is not None]
        real = [t for t in commands if not t.is_dummy and t.kind.value == "command"]
        assert any(wire_address(t) == t.plaintext_address for t in real)
