"""Edge cases of the leakage metrics and the bus observer."""

import pytest

from repro.analysis.leakage import (
    channel_coactivity,
    channel_entropy,
    ciphertext_repeat_fraction,
    footprint_leak,
    observed_write_share,
    spatial_locality_score,
    timing_regularity,
    type_inference_accuracy,
    wire_address,
)
from repro.mem.bus import BusObserver, BusTransfer, Direction, MemoryBus, TransferKind


def command(time_ps=0, channel=0, address=0x1000, is_write=False, dummy=False,
            wire=None):
    if wire is None:
        wire = (b"\x01" if is_write else b"\x00") + address.to_bytes(8, "big") + b"\x00" * 7
    return BusTransfer(
        time_ps=time_ps,
        channel=channel,
        kind=TransferKind.COMMAND,
        direction=Direction.TO_MEMORY,
        wire_bytes=wire,
        plaintext_address=address,
        plaintext_is_write=is_write,
        is_dummy=dummy,
    )


def data(time_ps=0, channel=0, to_memory=True):
    return BusTransfer(
        time_ps=time_ps,
        channel=channel,
        kind=TransferKind.DATA,
        direction=Direction.TO_MEMORY if to_memory else Direction.TO_PROCESSOR,
        wire_bytes=b"\x00" * 64,
    )


def pulse(time_ps=0, channel=0):
    """A wire-less timing pulse: empty wire bytes, nothing to decode."""
    return BusTransfer(
        time_ps=time_ps,
        channel=channel,
        kind=TransferKind.PULSE,
        direction=Direction.TO_MEMORY,
        wire_bytes=b"",
    )


class TestEmptyInputs:
    def test_all_metrics_handle_empty(self):
        assert ciphertext_repeat_fraction([]) == 0.0
        assert spatial_locality_score([]) == 0.0
        assert type_inference_accuracy([]) == 0.0
        assert observed_write_share([]) == 0.0
        assert channel_entropy([], 4) == 1.0
        assert channel_coactivity([], 4) == 0.0
        assert timing_regularity([]) == 0.0
        leak = footprint_leak([])
        assert leak.observed_unique == 0 and leak.relative_error == 0.0

    def test_all_metrics_handle_pulse_only_captures(self):
        """An opaque ORAM capture is all pulses: no commands, no wire bytes."""
        transfers = [pulse(time_ps=i * 1_000) for i in range(16)]
        assert ciphertext_repeat_fraction(transfers) == 0.0
        assert spatial_locality_score(transfers) == 0.0
        assert type_inference_accuracy(transfers) == 0.0
        assert observed_write_share(transfers) == 0.0
        assert channel_entropy(transfers, 4) == 1.0
        assert channel_coactivity(transfers, 4) == 0.0
        assert timing_regularity(transfers) == 0.0
        leak = footprint_leak(transfers)
        assert leak.total_commands == 0 and leak.relative_error == 0.0

    def test_zero_truth_footprint_with_observations_is_not_exact(self):
        """All-dummy traffic: any non-zero estimate is infinitely wrong."""
        transfers = [command(address=i * 64, dummy=True) for i in range(8)]
        leak = footprint_leak(transfers)
        assert leak.true_unique == 0 and leak.observed_unique == 8
        assert leak.relative_error == float("inf")


class TestSingletons:
    def test_single_command(self):
        transfers = [command()]
        assert ciphertext_repeat_fraction(transfers) == 0.0
        assert spatial_locality_score(transfers) == 0.0
        assert timing_regularity(transfers) == 0.0

    def test_attacker_view_excludes_annotations(self):
        transfer = command(address=0xDEAD00, dummy=True)
        view = transfer.attacker_view()
        assert 0xDEAD00 not in view  # only via wire bytes, not annotation
        assert len(view) == 5

    def test_wire_address_decodes_plain_format(self):
        assert wire_address(command(address=0xAB40)) == 0xAB40


class TestTypeAccuracyStructure:
    def test_no_dummies_means_full_leak(self):
        transfers = [
            command(time_ps=i * 1000, address=i * 64, is_write=i % 2 == 0)
            for i in range(10)
        ]
        assert type_inference_accuracy(transfers) == 1.0

    def test_paired_dummies_halve_accuracy(self):
        transfers = []
        for i in range(10):
            transfers.append(command(time_ps=i * 10_000, address=i * 64))
            transfers.append(
                command(time_ps=i * 10_000 + 100, address=0xFFC0, is_write=True, dummy=True)
            )
        assert type_inference_accuracy(transfers) == pytest.approx(0.5)

    def test_unpaired_real_request_leaks_despite_dummies_elsewhere(self):
        transfers = [
            command(time_ps=0, address=0),
            command(time_ps=100, address=0xFFC0, is_write=True, dummy=True),
            # A lone real write far away in time: no opposite-type companion.
            command(time_ps=10**9, address=64, is_write=True),
        ]
        accuracy = type_inference_accuracy(transfers)
        assert accuracy == pytest.approx((0.5 + 1.0) / 2)


class TestChannelMetrics:
    def test_entropy_single_channel_traffic_on_many_channels(self):
        transfers = [command(time_ps=i, channel=0) for i in range(8)]
        assert channel_entropy(transfers, 4) == 0.0

    def test_entropy_uniform(self):
        transfers = [command(time_ps=i, channel=i % 4) for i in range(8)]
        assert channel_entropy(transfers, 4) == pytest.approx(1.0)

    def test_entropy_ignores_out_of_range_channels(self):
        """Corrupt channel tags cannot push normalized entropy outside [0, 1]."""
        transfers = [command(time_ps=i, channel=i % 2) for i in range(8)]
        transfers += [command(time_ps=100 + i, channel=9) for i in range(8)]
        assert channel_entropy(transfers, 2) == pytest.approx(1.0)
        assert channel_entropy([command(channel=9)], 2) == 0.0

    def test_coactivity_requires_all_channels(self):
        transfers = [
            command(time_ps=0, channel=0),
            command(time_ps=10, channel=1, dummy=True),
        ]
        assert channel_coactivity(transfers, 2) == 1.0
        assert channel_coactivity(transfers, 4) == 0.0


class TestTimingRegularity:
    def test_perfectly_regular(self):
        transfers = [command(time_ps=i * 100_000, address=i * 64) for i in range(20)]
        assert timing_regularity(transfers) == pytest.approx(0.0)

    def test_bursty_traffic_scores_high(self):
        times = []
        t = 0
        for burst in range(5):
            for i in range(4):
                times.append(t)
                t += 30_000  # above the clustering threshold
            t += 5_000_000
        transfers = [command(time_ps=tp, address=i * 64) for i, tp in enumerate(times)]
        assert timing_regularity(transfers) > 1.0

    def test_pair_clustering(self):
        """Read-then-write pairs 1ns apart count as one slot."""
        transfers = []
        for i in range(10):
            transfers.append(command(time_ps=i * 100_000))
            transfers.append(command(time_ps=i * 100_000 + 1_000, is_write=True))
        assert timing_regularity(transfers) == pytest.approx(0.0)


class TestBusObserver:
    def test_fanout_to_all_observers(self):
        bus = MemoryBus()
        a, b = BusObserver("a"), BusObserver("b")
        bus.attach(a)
        bus.attach(b)
        bus.emit(command())
        assert len(a.transfers) == len(b.transfers) == 1

    def test_kind_filters(self):
        observer = BusObserver()
        observer.record(command())
        observer.record(data())
        assert len(observer.command_transfers()) == 1
        assert len(observer.data_transfers()) == 1
        assert observer.channels_seen() == {0}

    def test_clear(self):
        observer = BusObserver()
        observer.record(command())
        observer.clear()
        assert observer.transfers == []

    def test_write_share(self):
        transfers = [data(to_memory=True), data(to_memory=True), data(to_memory=False)]
        assert observed_write_share(transfers) == pytest.approx(2 / 3)

    def test_ring_buffer_caps_retention_and_counts_drops(self):
        observer = BusObserver(max_transfers=3)
        for i in range(5):
            observer.record(command(time_ps=i))
        assert len(observer.transfers) == 3
        assert observer.dropped == 2
        # Oldest transfers were the ones evicted.
        assert [t.time_ps for t in observer.transfers] == [2, 3, 4]
        observer.clear()
        assert observer.transfers == [] and observer.dropped == 0

    def test_ring_buffer_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            BusObserver(max_transfers=0)

    def test_unbounded_observer_never_drops(self):
        observer = BusObserver()
        for i in range(100):
            observer.record(command(time_ps=i))
        assert len(observer.transfers) == 100 and observer.dropped == 0
