"""Lifetime projection and the naive-boot MITM demonstration."""

import pytest

from repro.analysis.lifetime import (
    DEFAULT_CELL_ENDURANCE,
    lifetime_from_run,
    project_lifetime,
)
from repro.core.trust import (
    Manufacturer,
    MemoryChip,
    ProcessorChip,
    demonstrate_naive_mitm,
)
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.system.config import ProtectionLevel
from repro.system.simulator import run_benchmark


class TestProjection:
    def test_basic_arithmetic(self):
        # 100 writes over 1 second -> 10^8 endurance lasts 10^6 seconds.
        projection = project_lifetime(100, 1e9, cell_endurance=10**8)
        assert projection.hottest_row_writes_per_second == pytest.approx(100)
        assert projection.lifetime_years == pytest.approx(
            10**6 / (365.25 * 24 * 3600), rel=1e-6
        )

    def test_no_writes_lives_forever(self):
        assert project_lifetime(0, 1e9).lifetime_years == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_lifetime(1, 0)
        with pytest.raises(ConfigurationError):
            project_lifetime(1, 1e9, cell_endurance=0)

    def test_from_simulation_runs(self):
        profile = SPEC_PROFILES["lbm"]
        obfus = run_benchmark(profile, ProtectionLevel.OBFUSMEM, num_requests=800)
        oram = run_benchmark(profile, ProtectionLevel.ORAM, num_requests=800)
        obfus_life = lifetime_from_run(obfus.stats, obfus.execution_time_ns)
        oram_life = lifetime_from_run(
            oram.stats, oram.execution_time_ns, oram_blocks_per_access=100
        )
        assert obfus_life.lifetime_years > 0
        # The paper's conclusion, in years: ObfusMem's device outlives
        # ORAM's by a large factor (root buckets are rewritten per access).
        assert obfus_life.lifetime_years > 5 * oram_life.lifetime_years

    def test_default_endurance_matches_paper_range(self):
        assert 10**8 <= DEFAULT_CELL_ENDURANCE <= 10**9


class TestNaiveMitm:
    def test_attacker_splits_the_session(self):
        rng = DeterministicRng(666)
        cpu_vendor = Manufacturer("cpu", rng)
        mem_vendor = Manufacturer("mem", rng)
        processor = ProcessorChip(cpu_vendor)
        memory = MemoryChip(mem_vendor, channel=0)
        proc_key, attacker_proc_key, mem_key, attacker_mem_key = demonstrate_naive_mitm(
            processor, memory, rng
        )
        # Each victim shares its key with the attacker...
        assert proc_key == attacker_proc_key
        assert mem_key == attacker_mem_key
        # ...but the two victims never actually share a key with each other.
        assert proc_key != mem_key
