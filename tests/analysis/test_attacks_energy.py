"""Active attacks (§3.5 scenarios) and the §5.2 energy model."""

import pytest

from repro.analysis.attacks import (
    EcbAddressObfuscation,
    command_bitflip_attack,
    data_tamper_attack,
    dictionary_attack,
    injection_attack,
    message_drop_attack,
    replay_attack,
)
from repro.analysis.energy import analytical_comparison, measure_obfusmem
from repro.core.config import AuthMode
from repro.crypto.rng import DeterministicRng


class TestActiveAttacks:
    def test_command_bitflip_detected(self):
        assert command_bitflip_attack().detected

    def test_message_drop_detected(self):
        assert message_drop_attack().detected

    def test_replay_detected(self):
        assert replay_attack().detected

    def test_injection_detected(self):
        assert injection_attack().detected

    def test_data_tamper_not_detected_at_bus(self):
        """Observation 4: encrypt-and-MAC does not cover data; detection is
        deferred to the Merkle tree when the block is read back."""
        assert not data_tamper_attack().detected

    def test_bitflip_detected_even_without_mac(self):
        """Without a MAC, the tampered command decodes to a garbage type
        code with overwhelming probability — detected, but only
        probabilistically; the MAC makes it certain."""
        outcome = command_bitflip_attack(auth=AuthMode.NONE)
        assert outcome.detected  # type byte is scrambled for this input

    def test_encrypt_then_mac_also_detects_bitflip(self):
        assert command_bitflip_attack(auth=AuthMode.ENCRYPT_THEN_MAC).detected


class TestDictionaryAttack:
    def make_streams(self, mode):
        rng = DeterministicRng(17)
        hot = [0x1000, 0x2000, 0x3000, 0x4000, 0x5000]
        weights = [30, 25, 20, 15, 10]
        addresses = [a for a, w in zip(hot, weights) for _ in range(w)]
        rng.shuffle(addresses)
        if mode == "ecb":
            ecb = EcbAddressObfuscation(rng.token_bytes(16))
            wires = [ecb.encrypt_address(a) for a in addresses]
        else:  # counter-mode: unique encodings
            wires = [rng.token_bytes(16) for _ in addresses]
        return addresses, wires

    def test_ecb_breaks(self):
        addresses, wires = self.make_streams("ecb")
        result = dictionary_attack(addresses, wires, top_k=5)
        assert result.accuracy == 1.0

    def test_counter_mode_resists(self):
        addresses, wires = self.make_streams("ctr")
        result = dictionary_attack(addresses, wires, top_k=5)
        assert result.accuracy == 0.0

    def test_empty_streams(self):
        assert dictionary_attack([], []).accuracy == 0.0


class TestAnalyticalEnergy:
    def test_paper_headline_numbers(self):
        comparison = analytical_comparison()
        assert comparison.oram_energy_factor == pytest.approx(780.0)
        assert comparison.obfusmem_energy_factor == pytest.approx(3.9)
        assert comparison.pcm_energy_reduction == pytest.approx(200.0)
        assert comparison.oram_pads_per_access == 800
        assert comparison.obfusmem_pads_worst_case == 64  # 4 channels
        assert comparison.obfusmem_pads_best_case == 16
        assert comparison.pad_reduction_worst_case == pytest.approx(12.5)
        assert comparison.pad_reduction_best_case == pytest.approx(50.0)
        assert comparison.lifetime_improvement == pytest.approx(100.0)

    def test_channel_scaling(self):
        assert analytical_comparison(channels=8).obfusmem_pads_worst_case == 128

    def test_measured_extractor_handles_empty_stats(self):
        measured = measure_obfusmem({}, "none")
        assert measured.accesses == 0
        assert measured.pads_per_access == 0.0
