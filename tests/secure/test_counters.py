"""Counter state: minor/major behaviour and IV packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secure.counters import (
    BLOCKS_PER_PAGE,
    MINOR_COUNTER_LIMIT,
    PAGE_SIZE_BYTES,
    CounterStore,
    PageCounters,
    pack_iv,
)


class TestPageCounters:
    def test_bump_increments(self):
        page = PageCounters()
        assert page.bump_minor(0) is False
        assert page.minors[0] == 1

    def test_overflow_bumps_major_and_resets(self):
        page = PageCounters()
        for _ in range(MINOR_COUNTER_LIMIT):
            page.bump_minor(3)
        assert page.minors[3] == MINOR_COUNTER_LIMIT
        assert page.bump_minor(3) is True
        assert page.major == 1
        assert page.minors[3] == 1
        assert page.minors[0] == 0

    def test_offset_range_checked(self):
        with pytest.raises(ConfigurationError):
            PageCounters().bump_minor(BLOCKS_PER_PAGE)

    def test_iv_pair_never_repeats_for_a_block(self):
        """(major, minor) must be unique across consecutive writes."""
        page = PageCounters()
        seen = set()
        for _ in range(3 * MINOR_COUNTER_LIMIT):
            page.bump_minor(5)
            pair = (page.major, page.minors[5])
            assert pair not in seen
            seen.add(pair)


class TestCounterStore:
    def test_iv_components(self):
        store = CounterStore()
        address = 3 * PAGE_SIZE_BYTES + 5 * 64
        page_id, offset, major, minor = store.iv_components(address)
        assert page_id == 3
        assert offset == 5
        assert (major, minor) == (0, 0)

    def test_pages_created_on_demand(self):
        store = CounterStore()
        store.page(0)
        store.page(7)
        assert store.pages_touched() == 2


class TestIvPacking:
    def test_length(self):
        assert len(pack_iv(1, 2, 3, 4)) == 16

    def test_field_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_iv(1 << 48, 0, 0, 0)

    @given(
        page=st.integers(min_value=0, max_value=(1 << 48) - 1),
        offset=st.integers(min_value=0, max_value=63),
        major=st.integers(min_value=0, max_value=(1 << 48) - 1),
        minor=st.integers(min_value=0, max_value=127),
    )
    def test_injective_packing(self, page, offset, major, minor):
        """Distinct component tuples give distinct IVs (spot check against
        a perturbed tuple)."""
        iv = pack_iv(page, offset, major, minor)
        perturbed = pack_iv(page, offset, major, (minor + 1) % 128)
        assert iv != perturbed
