"""Secure memory controller: counter-cache timing and functional crypto."""

import pytest

from repro.errors import IntegrityError
from repro.mem.address_mapping import AddressMapping
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.secure.at_rest import AtRestEncryption
from repro.secure.counters import PAGE_SIZE_BYTES
from repro.secure.memory_encryption import SecureMemoryController
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

CAPACITY = 1 << 30  # 1GB keeps the counter region small for tests


def make_controller(**kwargs):
    engine = Engine()
    stats = StatRegistry()
    mapping = AddressMapping(capacity_bytes=CAPACITY, channels=1)
    memory = MemorySystem(engine, mapping, stats)
    controller = SecureMemoryController(
        engine, memory, capacity_bytes=CAPACITY, stats=stats, **kwargs
    )
    return engine, stats, controller


def issue_and_run(engine, controller, request):
    done = []
    request.issue_time_ps = engine.now_ps
    controller.issue(request, lambda r: done.append(r))
    engine.run()
    return done


class TestCounterCacheTiming:
    def test_first_read_misses_counter_cache(self):
        engine, stats, controller = make_controller()
        issue_and_run(engine, controller, MemoryRequest(0, RequestType.READ))
        assert stats.group("memenc").get("counter_misses") == 1

    def test_same_page_read_hits(self):
        engine, stats, controller = make_controller()
        issue_and_run(engine, controller, MemoryRequest(0, RequestType.READ))
        issue_and_run(engine, controller, MemoryRequest(64, RequestType.READ))
        assert stats.group("memenc").get("counter_hits") == 1

    def test_counter_miss_issues_extra_read(self):
        engine, stats, controller = make_controller(sequential_prefetch=False)
        issue_and_run(engine, controller, MemoryRequest(0, RequestType.READ))
        # One data read + one counter read reached the channel.
        assert stats.group("channel0").get("reads") == 2

    def test_counter_miss_slower_than_hit(self):
        engine, _, controller = make_controller(sequential_prefetch=False)
        miss = issue_and_run(engine, controller, MemoryRequest(0, RequestType.READ))[0]
        hit = issue_and_run(engine, controller, MemoryRequest(64, RequestType.READ))[0]
        assert miss.latency_ps > hit.latency_ps

    def test_sequential_prefetch_hides_next_page(self):
        engine, stats, controller = make_controller(sequential_prefetch=True)
        issue_and_run(engine, controller, MemoryRequest(0, RequestType.READ))
        issue_and_run(
            engine, controller, MemoryRequest(PAGE_SIZE_BYTES, RequestType.READ)
        )
        assert stats.group("memenc").get("counter_misses") == 1
        # Miss on page 0 prefetches page 1; the hit on page 1 chains the
        # stream forward by prefetching page 2.
        assert stats.group("memenc").get("counter_prefetches") == 2

    def test_prefetch_skipped_for_random_jumps(self):
        engine, stats, controller = make_controller(sequential_prefetch=True)
        issue_and_run(
            engine, controller, MemoryRequest(50 * PAGE_SIZE_BYTES, RequestType.READ)
        )
        assert stats.group("memenc").get("counter_prefetches") == 0

    def test_write_bumps_counter_and_forwards(self):
        engine, stats, controller = make_controller()
        issue_and_run(engine, controller, MemoryRequest(0, RequestType.WRITE))
        assert stats.group("channel0").get("writes") == 1
        assert controller.counters.page(0).minors[0] == 1

    def test_minor_overflow_reencrypts_page(self):
        engine, stats, controller = make_controller()
        for _ in range(128):
            issue_and_run(engine, controller, MemoryRequest(0, RequestType.WRITE))
        assert stats.group("memenc").get("minor_overflows") >= 1
        # Page re-encryption issued 64 reads + 64 writes of extra traffic.
        assert stats.group("channel0").get("reads") >= 64

    def test_dummy_requests_pass_through(self):
        engine, stats, controller = make_controller()
        dummy = MemoryRequest(0, RequestType.READ, is_dummy=True)
        issue_and_run(engine, controller, dummy)
        assert stats.group("memenc").get("counter_misses") == 0


class TestFunctionalEncryption:
    KEY = bytes(range(16))

    def test_roundtrip(self):
        _, _, controller = make_controller(functional_key=self.KEY, with_merkle=True)
        ciphertext = controller.encrypt_block(0x1000, b"\x11" * 64)
        assert ciphertext != b"\x11" * 64
        assert controller.decrypt_block(0x1000, ciphertext) == b"\x11" * 64

    def test_rewrites_produce_fresh_ciphertext(self):
        _, _, controller = make_controller(functional_key=self.KEY)
        first = controller.encrypt_block(0, b"\x22" * 64)
        second = controller.encrypt_block(0, b"\x22" * 64)
        assert first != second  # minor counter bumped

    def test_merkle_detects_counter_tamper(self):
        _, _, controller = make_controller(functional_key=self.KEY, with_merkle=True)
        controller.encrypt_block(0, b"\x33" * 64)
        # Attacker rolls the counter back (a replay of old ciphertext).
        controller.counters.page(0).minors[0] = 0
        with pytest.raises(IntegrityError):
            controller.verify_page_counters(0)

    def test_requires_functional_key(self):
        _, _, controller = make_controller()
        with pytest.raises(Exception):
            controller.encrypt_block(0, b"\x00" * 64)


class TestAtRestEncryption:
    def test_roundtrip(self):
        engine = AtRestEncryption(bytes(16))
        ciphertext = engine.encrypt_for_write(0x2000, b"\x44" * 64)
        assert engine.decrypt_after_read(0x2000, ciphertext) == b"\x44" * 64

    def test_same_plaintext_different_ciphertext_across_writes(self):
        engine = AtRestEncryption(bytes(16))
        assert engine.encrypt_for_write(0, b"\x55" * 64) != engine.encrypt_for_write(
            0, b"\x55" * 64
        )

    def test_different_blocks_different_pads(self):
        engine = AtRestEncryption(bytes(16))
        a = engine.encrypt_for_write(0, b"\x00" * 64)
        b = engine.encrypt_for_write(64, b"\x00" * 64)
        assert a != b
