"""Pyramid ORAM: correctness, rebuild schedule, invariants, snapshots."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramDeadlockError, OramError
from repro.oram.pyramid import PyramidOram, _bucket_of


def make_pyramid(num_blocks=64, **kwargs):
    return PyramidOram(num_blocks, DeterministicRng(2017), **kwargs)


class TestCorrectness:
    def test_read_your_write(self):
        pyramid = make_pyramid()
        pyramid.write(7, b"pyramid data")
        assert pyramid.read(7) == b"pyramid data"

    def test_unwritten_reads_none(self):
        assert make_pyramid().read(1) is None

    def test_overwrite(self):
        pyramid = make_pyramid()
        pyramid.write(3, b"v1")
        pyramid.write(3, b"v2")
        assert pyramid.read(3) == b"v2"

    def test_full_working_set(self):
        pyramid = make_pyramid(num_blocks=96)
        for block in range(96):
            pyramid.write(block, bytes([block]))
        for block in range(96):
            assert pyramid.read(block) == bytes([block])
        assert pyramid.stored_blocks == 96

    def test_out_of_range(self):
        with pytest.raises(OramError):
            make_pyramid(num_blocks=8).read(9)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            make_pyramid(bucket_size=0)
        with pytest.raises(ConfigurationError):
            make_pyramid(top_capacity=0)
        with pytest.raises(ConfigurationError):
            make_pyramid(levels=1)  # cannot hold 64 blocks


class TestRebuilds:
    def test_rebuild_triggers_when_top_overflows(self):
        pyramid = make_pyramid(top_capacity=2)
        for block in range(12):
            pyramid.write(block, b"x")
        assert pyramid.stats.get("rebuilds") > 0
        assert pyramid.epoch == pyramid.stats.get("rebuilds")

    def test_rebuild_empties_upper_levels(self):
        pyramid = make_pyramid(top_capacity=2)
        for block in range(40):
            pyramid.write(block % 16, bytes([block % 256]))
        # After any rebuild the merged-from levels are empty; the binary
        # counter shape means occupied levels hold all stored blocks.
        assert len(pyramid.top) <= pyramid.top_capacity
        pyramid.check_invariant()
        assert pyramid.stored_blocks == 16

    def test_keys_refresh_per_rebuild(self):
        pyramid = make_pyramid(top_capacity=1)
        keys = set()
        for block in range(20):
            pyramid.write(block % 8, b"x")
            keys.update(
                level.key for level in pyramid.levels if level.occupied
            )
        assert len(keys) > 1  # fresh hash key per merge

    def test_deadlock_when_level_cannot_fit(self):
        # Pigeonhole: more blocks than a level has slots is unplaceable no
        # matter how many fresh keys are tried.
        from repro.oram.path_oram import OramBlock
        from repro.oram.pyramid import _HashLevel

        pyramid = make_pyramid(num_blocks=8, bucket_size=1)
        level = _HashLevel(num_buckets=4, bucket_size=1)
        blocks = [OramBlock(i, 0, b"x") for i in range(5)]
        with pytest.raises(OramDeadlockError):
            pyramid._fill_level(level, blocks)

    def test_deadlock_when_rehashing_keeps_colliding(self):
        # 4 blocks into 4 single-slot buckets needs a perfect hash; with a
        # tiny retry budget the fixed-seed key stream never finds one.
        from repro.oram.path_oram import OramBlock
        from repro.oram.pyramid import _HashLevel

        pyramid = make_pyramid(num_blocks=8, bucket_size=1, rehash_limit=2)
        level = _HashLevel(num_buckets=4, bucket_size=1)
        blocks = [OramBlock(i, 0, b"x") for i in range(4)]
        with pytest.raises(OramDeadlockError):
            pyramid._fill_level(level, blocks)
        assert pyramid.stats.get("rehash_retries") == 2


class TestInvariants:
    def test_invariant_after_mixed_workload(self):
        pyramid = make_pyramid()
        rng = DeterministicRng(5)
        for i in range(400):
            block = rng.randrange(64)
            if i % 3:
                pyramid.write(block, bytes([i % 256]))
            else:
                pyramid.read(block)
        pyramid.check_invariant()

    def test_probe_reads_one_bucket_per_occupied_level(self):
        pyramid = make_pyramid(top_capacity=4)
        for block in range(12):
            pyramid.write(block, b"x")
        occupied = sum(1 for level in pyramid.levels if level.occupied)
        before = pyramid.stats.get("blocks_read")
        pyramid.read(0)
        probed = pyramid.stats.get("blocks_read") - before
        assert probed == occupied * pyramid.bucket_size

    def test_keyed_hash_is_process_stable(self):
        # blake2b, not Python's randomized hash: same placement everywhere.
        assert _bucket_of(1234, 56, 64) == _bucket_of(1234, 56, 64)
        placements = {_bucket_of(key, 56, 64) for key in range(32)}
        assert len(placements) > 1  # the key actually drives placement


class TestSnapshots:
    def test_pickle_mid_workload_resumes_bit_identically(self):
        """The PR-8 snapshot property: freeze/thaw is invisible."""
        straight = make_pyramid()
        paused = make_pyramid()
        ops = DeterministicRng(31)
        schedule = [
            (ops.randrange(64), ops.randrange(2)) for _ in range(200)
        ]
        for step, (block, is_write) in enumerate(schedule):
            if step == 100:
                paused = pickle.loads(pickle.dumps(paused))
            for oram in (straight, paused):
                if is_write:
                    oram.write(block, bytes([step % 256]))
                else:
                    oram.read(block)
        paused.check_invariant()
        assert paused.stats.get("rebuilds") == straight.stats.get("rebuilds")
        assert [level.key for level in paused.levels] == [
            level.key for level in straight.levels
        ]
        assert sorted(paused.top) == sorted(straight.top)


@settings(max_examples=15, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        max_size=50,
    )
)
def test_pyramid_invariant_property(operations):
    pyramid = PyramidOram(32, DeterministicRng(3))
    written = {}
    for block, is_write in operations:
        if is_write:
            pyramid.write(block, bytes([block]))
            written[block] = bytes([block])
        else:
            data = pyramid.read(block)
            if block in written:
                assert data == written[block]
    pyramid.check_invariant()
