"""Ring ORAM: correctness, invariants, bandwidth vs Path ORAM, snapshots."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramError
from repro.oram.path_oram import PathOram
from repro.oram.ring_oram import RingOram


def make_ring(num_blocks=64, **kwargs):
    return RingOram(num_blocks, DeterministicRng(2017), **kwargs)


class TestCorrectness:
    def test_read_your_write(self):
        ring = make_ring()
        ring.write(7, b"ring data")
        assert ring.read(7) == b"ring data"

    def test_unwritten_reads_none(self):
        assert make_ring().read(1) is None

    def test_overwrite(self):
        ring = make_ring()
        ring.write(3, b"v1")
        ring.write(3, b"v2")
        assert ring.read(3) == b"v2"

    def test_full_working_set(self):
        ring = make_ring(num_blocks=96, stash_limit=512)
        for block in range(96):
            ring.write(block, bytes([block]))
        for block in range(96):
            assert ring.read(block) == bytes([block])

    def test_out_of_range(self):
        with pytest.raises(OramError):
            make_ring(num_blocks=8).read(9)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            make_ring(bucket_reals=0)
        with pytest.raises(ConfigurationError):
            make_ring(evict_rate=0)


class TestMaintenance:
    def test_early_reshuffles_trigger(self):
        # Few dummies per bucket -> the root exhausts them quickly.
        ring = make_ring(bucket_dummies=2, stash_limit=512)
        for i in range(40):
            ring.write(i % 16, b"x")
        assert ring.stats.get("early_reshuffles") > 0

    def test_scheduled_evictions(self):
        ring = make_ring(evict_rate=4)
        for i in range(16):
            ring.write(i, b"x")
        assert ring.stats.get("evictions") == 4

    def test_invariant_after_mixed_workload(self):
        ring = make_ring(stash_limit=512)
        rng = DeterministicRng(5)
        for i in range(300):
            block = rng.randrange(64)
            if i % 3:
                ring.write(block, bytes([i % 256]))
            else:
                ring.read(block)
        ring.check_invariant()


class TestBandwidth:
    def test_xor_reduces_online_bus_blocks(self):
        with_xor = make_ring(use_xor=True)
        without = make_ring(use_xor=False)
        for ring in (with_xor, without):
            for i in range(20):
                ring.write(i, b"x")
        assert (
            with_xor.stats.get("bus_blocks_read")
            < without.stats.get("bus_blocks_read")
        )

    def test_ring_cheaper_than_path_on_the_bus(self):
        """The paper's ordering: Ring ORAM's bandwidth overhead is a
        multiple below Path ORAM's (24x vs 120x in the cited config)."""
        rng = DeterministicRng(9)
        ring = make_ring(num_blocks=64, stash_limit=512)
        path = PathOram(64, rng, stash_limit=512)
        for i in range(200):
            block = i % 64
            ring.write(block, b"r")
            path.write(block, b"p")
        path_blocks = (
            path.stats.get("blocks_read") + path.stats.get("blocks_written")
        ) / path.stats.get("accesses")
        assert ring.bus_blocks_per_access < path_blocks / 1.5

    def test_slots_touched_once_per_bucket(self):
        ring = make_ring()
        ring.write(0, b"x")
        # levels+1 buckets on the path, one slot each.
        assert ring.stats.get("slots_touched") == ring.levels + 1


class TestSnapshots:
    """The snapshot/resume lane for Ring ORAM (previously Path-only)."""

    def _run_schedule(self, ring, schedule, start, stop):
        for step in range(start, stop):
            block, is_write = schedule[step]
            if is_write:
                ring.write(block, bytes([step % 256]))
            else:
                ring.read(block)

    def test_invariant_and_stash_bound_after_thaw(self):
        ring = make_ring(stash_limit=512)
        schedule = []
        ops = DeterministicRng(41)
        for _ in range(300):
            schedule.append((ops.randrange(64), bool(ops.randrange(2))))
        self._run_schedule(ring, schedule, 0, 150)
        # The freeze/thaw the checkpoint store and preemptible pool do.
        thawed = pickle.loads(pickle.dumps(ring))
        thawed.check_invariant()
        self._run_schedule(thawed, schedule, 150, 300)
        thawed.check_invariant()
        assert len(thawed.stash) <= thawed.stash_limit
        assert thawed.max_stash_seen <= thawed.stash_limit

    def test_thawed_run_matches_uninterrupted_twin(self):
        straight = make_ring(stash_limit=512)
        paused = make_ring(stash_limit=512)
        schedule = []
        ops = DeterministicRng(43)
        for _ in range(200):
            schedule.append((ops.randrange(64), bool(ops.randrange(2))))
        self._run_schedule(straight, schedule, 0, 200)
        self._run_schedule(paused, schedule, 0, 100)
        paused = pickle.loads(pickle.dumps(paused))
        self._run_schedule(paused, schedule, 100, 200)
        # Bit-identical physics: same positions, same stash, same counters.
        assert paused._position == straight._position
        assert sorted(paused.stash) == sorted(straight.stash)
        assert paused.stats.get("evictions") == straight.stats.get("evictions")
        assert paused.stats.get("bus_blocks_read") == straight.stats.get(
            "bus_blocks_read"
        )
        assert paused._evict_leaf_counter == straight._evict_leaf_counter

    def test_timed_ring_scheme_survives_world_snapshot(self):
        """`oram_ring` through SimWorld's pause/freeze/thaw, vs straight."""
        from repro.cpu.generator import make_trace
        from repro.cpu.spec_profiles import SPEC_PROFILES
        from repro.system.config import MachineConfig
        from repro.system.world import SimWorld

        profile = SPEC_PROFILES["mcf"]
        trace = make_trace(profile, 200, seed=11)

        def build():
            return SimWorld(
                [trace],
                "oram_ring",
                machine=MachineConfig(),
                window=profile.window,
                seed=11,
            )

        straight = build()
        assert straight.run()
        paused = build()
        while not paused.run(stop_after_events=400):
            paused = paused.snapshot().thaw()
        assert (
            paused.result().execution_time_ns
            == straight.result().execution_time_ns
        )


@settings(max_examples=15, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        max_size=50,
    )
)
def test_ring_invariant_property(operations):
    ring = RingOram(32, DeterministicRng(3), stash_limit=512)
    written = {}
    for block, is_write in operations:
        if is_write:
            ring.write(block, bytes([block]))
            written[block] = bytes([block])
        else:
            data = ring.read(block)
            if block in written:
                assert data == written[block]
    ring.check_invariant()
