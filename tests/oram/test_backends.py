"""ORAM backend descriptors: registry, decompositions, and end-to-end wiring."""

import pickle
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.oram.backend import (
    AccessDecomposition,
    AccessPhase,
    OramBackend,
    PalermoBackend,
    PathOramBackend,
    PyramidOramBackend,
    RingOramBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.oram.path_oram import PathOram
from repro.oram.pyramid import PyramidOram
from repro.oram.ring_oram import RingOram
from repro.oram.timing import OramMemoryModel
from repro.schemes import ProtectionScheme, get_scheme, register, unregister
from repro.schemes.stages import OramBackendStage
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry
from repro.system.builder import build_system
from repro.system.config import MachineConfig


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"path", "ring", "pyramid", "palermo"} <= set(backend_names())

    def test_lookup_returns_descriptor(self):
        assert isinstance(get_backend("path"), PathOramBackend)
        assert isinstance(get_backend("ring"), RingOramBackend)
        assert isinstance(get_backend("pyramid"), PyramidOramBackend)
        assert isinstance(get_backend("palermo"), PalermoBackend)

    def test_unknown_backend_gets_close_match_hint(self):
        with pytest.raises(ConfigurationError, match="did you mean 'pyramid'"):
            get_backend("pyramind")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(PathOramBackend())

    def test_available_backends_lists_descriptors(self):
        names = [backend.name for backend in available_backends()]
        assert names == backend_names()


class TestDecompositions:
    def test_path_baseline_is_exactly_the_paper_constant(self):
        # x/2 + x/2 == x in floating point: the refactor must keep the
        # golden grid's 2500 ns bit-identical.
        decomposition = PathOramBackend().decompose()
        assert decomposition.latency_ns == 2500.0
        assert decomposition.blocks_read == 100
        assert decomposition.blocks_written == 100
        assert decomposition.cell_writes == 100
        assert decomposition.overlap_savings_ns == 0.0

    def test_palermo_overlap_collapses_steps(self):
        decomposition = PalermoBackend().decompose()
        # Three phases fold into one pipeline step: latency is the slowest
        # phase, not the sum.
        assert len(decomposition.steps()) == 1
        slowest = max(p.latency_ns for p in decomposition.phases)
        assert decomposition.latency_ns == slowest
        assert decomposition.overlap_savings_ns > 0
        assert decomposition.serialized_latency_ns > decomposition.latency_ns

    def test_latency_ordering_across_designs(self):
        latency = {
            name: get_backend(name).decompose().latency_ns
            for name in ("path", "ring", "pyramid", "palermo")
        }
        assert latency["palermo"] < latency["ring"]
        assert latency["ring"] < latency["pyramid"]
        assert latency["pyramid"] < latency["path"]

    def test_ring_bus_traffic_is_a_multiple_below_path(self):
        # The 24x-vs-120x flavor: Ring moves far fewer amortized blocks.
        path = PathOramBackend().decompose()
        ring = RingOramBackend().decompose()
        path_total = path.blocks_read + path.blocks_written
        ring_total = ring.blocks_read + ring.blocks_written
        assert ring_total < path_total / 4

    def test_with_latency_rescales_every_phase(self):
        base = RingOramBackend().decompose().latency_ns
        scaled = RingOramBackend().with_latency(5000.0).decompose().latency_ns
        assert scaled == pytest.approx(2 * base)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            PathOramBackend(access_latency_ns=0)
        with pytest.raises(ConfigurationError):
            PathOramBackend().with_latency(-1.0)

    def test_first_phase_cannot_overlap(self):
        with pytest.raises(ConfigurationError):
            AccessDecomposition(
                phases=(AccessPhase("only", 1.0, overlapped=True),)
            )

    def test_phase_named_lookup(self):
        decomposition = PathOramBackend().decompose()
        assert decomposition.phase_named("writeback").cell_writes == 100
        with pytest.raises(KeyError):
            decomposition.phase_named("absent")

    def test_descriptors_pickle_round_trip(self):
        for backend in available_backends():
            clone = pickle.loads(pickle.dumps(backend))
            assert clone == backend
            assert clone.decompose() == backend.decompose()


class TestFunctionalFactories:
    def test_each_backend_constructs_its_algorithm(self):
        rng = DeterministicRng(11)
        assert isinstance(
            get_backend("path").make_functional(32, rng.fork("p")), PathOram
        )
        assert isinstance(
            get_backend("ring").make_functional(32, rng.fork("r")), RingOram
        )
        assert isinstance(
            get_backend("pyramid").make_functional(32, rng.fork("y")), PyramidOram
        )
        # Palermo keeps Ring's functional tree semantics (the co-design
        # changes timing, not the access algorithm).
        assert isinstance(
            get_backend("palermo").make_functional(32, rng.fork("m")), RingOram
        )

    def test_functional_instances_serve_a_workload(self):
        rng = DeterministicRng(13)
        for name in backend_names():
            kwargs = {} if name == "pyramid" else {"stash_limit": 512}
            oram = get_backend(name).make_functional(16, rng.fork(name), **kwargs)
            for block in range(16):
                oram.write(block, bytes([block]))
            for block in range(16):
                assert oram.read(block) == bytes([block])
            oram.check_invariant()


class TestTimingModelBackends:
    def _model(self, backend):
        return OramMemoryModel(Engine(), StatRegistry(), backend=backend)

    def test_model_accepts_backend_by_name(self):
        model = self._model("ring")
        assert model.backend.name == "ring"
        assert model.access_latency_ps == ns_to_ps(
            RingOramBackend().decompose().latency_ns
        )

    def test_model_charges_backend_traffic(self):
        from repro.mem.request import MemoryRequest, RequestType

        model = self._model("palermo")
        stats = model.stats
        model.issue(MemoryRequest(0, RequestType.READ), None)
        decomposition = PalermoBackend().decompose()
        assert stats.get("accesses") == 1
        assert stats.get("blocks_read") == decomposition.blocks_read
        assert stats.get("cell_block_writes") == decomposition.cell_writes

    def test_legacy_latency_override_still_raises(self):
        with pytest.raises(ConfigurationError):
            OramMemoryModel(Engine(), StatRegistry(), access_latency_ns=0)


@dataclass(frozen=True)
class _TollboothBackend(OramBackend):
    """Custom test backend: one flat phase, registered by the test."""

    name: ClassVar[str] = "tollbooth"
    summary: ClassVar[str] = "flat-latency test backend"

    def decompose(self):
        return AccessDecomposition(
            phases=(AccessPhase("toll", self.access_latency_ns, blocks_read=1.0),)
        )

    def make_functional(self, num_blocks, rng, **kwargs):
        return PathOram(num_blocks, rng, **kwargs)


class TestCustomBackendEndToEnd:
    def test_registered_backend_builds_through_a_scheme(self):
        register_backend(_TollboothBackend())
        try:
            register(
                ProtectionScheme(
                    name="tollbooth_oram",
                    description="custom ORAM backend registered by a test",
                    stages=(OramBackendStage(backend="tollbooth"),),
                )
            )
            try:
                scheme = get_scheme("tollbooth_oram")
                assert scheme.stack_summary() == "oram-tollbooth"
                assert "opaque-backend" in scheme.traits
                system = build_system(
                    scheme,
                    MachineConfig(),
                    Engine(),
                    StatRegistry(),
                    DeterministicRng(1),
                )
                assert system.oram is not None
                assert system.oram.backend.name == "tollbooth"
                assert system.oram.access_latency_ps == ns_to_ps(
                    MachineConfig().oram_access_latency_ns
                )
            finally:
                unregister("tollbooth_oram")
        finally:
            unregister_backend("tollbooth")
