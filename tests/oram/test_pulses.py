"""PULSE observability of the opaque ORAM package (§6.2 generalized).

An opaque trusted memory exposes no wire, but its activity timing is still
physically observable.  These tests pin the contract: per-access pulses for
every backend, tight burst clusters only for backends that declare a
maintenance cadence, nothing at all without a bus — and attaching a bus
never changes simulated timing or stats.
"""

from functools import partial

from repro.mem.bus import BusObserver, MemoryBus, TransferKind
from repro.mem.request import MemoryRequest, RequestType
from repro.oram.timing import OramMemoryModel
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

ACCESSES = 32
SPACING_PS = 500_000


def drive(backend, bus=None):
    engine = Engine()
    stats = StatRegistry()
    model = OramMemoryModel(engine, stats, backend=backend, bus=bus)
    for i in range(ACCESSES):
        request = MemoryRequest(address=i * 64, request_type=RequestType.READ)
        engine.post(i * SPACING_PS, partial(model.issue, request, None))
    engine.run()
    return stats.as_dict(), engine.now_ps


def pulses(observer):
    return [t for t in observer.transfers if t.kind is TransferKind.PULSE]


class TestPulseEmission:
    def test_ring_emits_demand_pulses_plus_maintenance_bursts(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        drive("ring", bus=bus)
        observed = pulses(observer)
        # One demand pulse per access plus one 200-pulse burst per 8
        # accesses (the Ring backend's declared eviction cadence).
        assert len(observed) == ACCESSES + (ACCESSES // 8) * 200
        assert all(t.wire_bytes == b"" for t in observed)
        assert observer.transfers == observed  # pulses are all it emits

    def test_path_emits_only_demand_pulses(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        drive("path", bus=bus)
        assert len(pulses(observer)) == ACCESSES

    def test_no_bus_means_no_observability_requirement(self):
        stats, now = drive("ring", bus=None)
        assert stats["oram.accesses"] == ACCESSES

    def test_observer_never_perturbs_timing_or_stats(self):
        bus = MemoryBus()
        bus.attach(BusObserver())
        silent_stats, silent_now = drive("ring", bus=None)
        observed_stats, observed_now = drive("ring", bus=bus)
        assert observed_stats == silent_stats
        assert observed_now == silent_now
