"""Path ORAM: correctness, invariants, overheads, failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramDeadlockError, OramError
from repro.oram.path_oram import PathOram
from repro.oram.timing import OramMemoryModel
from repro.mem.request import MemoryRequest, RequestType
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry


def make_oram(num_blocks=64, **kwargs):
    return PathOram(num_blocks, DeterministicRng(2017), **kwargs)


class TestBasicCorrectness:
    def test_read_your_write(self):
        oram = make_oram()
        oram.write(5, b"hello")
        assert oram.read(5) == b"hello"

    def test_unwritten_reads_none(self):
        assert make_oram().read(3) is None

    def test_overwrite(self):
        oram = make_oram()
        oram.write(5, b"v1")
        oram.write(5, b"v2")
        assert oram.read(5) == b"v2"

    def test_access_returns_old_data(self):
        oram = make_oram()
        oram.write(1, b"old")
        assert oram.access(1, write_data=b"new") == b"old"

    def test_many_blocks(self):
        oram = make_oram(num_blocks=128)
        for block in range(128):
            oram.write(block, bytes([block]))
        for block in range(128):
            assert oram.read(block) == bytes([block])

    def test_out_of_range_rejected(self):
        with pytest.raises(OramError):
            make_oram(num_blocks=8).read(8)

    def test_too_small_tree_rejected(self):
        with pytest.raises(ConfigurationError):
            PathOram(100, DeterministicRng(1), levels=2, bucket_size=4)


class TestInvariant:
    def test_invariant_holds_after_mixed_workload(self):
        oram = make_oram(num_blocks=64)
        rng = DeterministicRng(7)
        for i in range(400):
            block = rng.randrange(64)
            if i % 3:
                oram.write(block, bytes([i % 256]))
            else:
                oram.read(block)
        oram.check_invariant()

    @settings(max_examples=20, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
            max_size=60,
        )
    )
    def test_invariant_property(self, operations):
        oram = make_oram(num_blocks=32)
        for block, is_write in operations:
            if is_write:
                oram.write(block, b"x")
            else:
                oram.read(block)
        oram.check_invariant()

    @settings(max_examples=20, deadline=None)
    @given(
        writes=st.dictionaries(
            st.integers(min_value=0, max_value=31), st.binary(max_size=8), max_size=20
        )
    )
    def test_read_your_writes_property(self, writes):
        oram = make_oram(num_blocks=32)
        for block, data in writes.items():
            oram.write(block, data)
        for block, data in writes.items():
            assert oram.read(block) == data


class TestObliviousness:
    def test_blocks_moved_is_constant_per_access(self):
        """Reads and writes move exactly the same number of blocks."""
        oram = make_oram(num_blocks=64)
        per_access = 2 * (oram.levels + 1) * oram.bucket_size

        oram.write(1, b"a")
        after_write = oram.stats.get("blocks_read") + oram.stats.get("blocks_written")
        oram.read(1)
        after_read = oram.stats.get("blocks_read") + oram.stats.get("blocks_written")
        assert after_write == per_access
        assert after_read - after_write == per_access

    def test_position_remapped_every_access(self):
        oram = make_oram(num_blocks=64)
        oram.write(9, b"x")
        leaves = set()
        for _ in range(50):
            oram.read(9)
            leaves.add(oram.position_map.lookup(9))
        assert len(leaves) > 5  # uniformly re-randomized


class TestOverheadAccounting:
    def test_capacity_overhead_at_least_half(self):
        oram = make_oram(num_blocks=64)
        assert oram.capacity_overhead >= 0.5  # paper: >=50% waste

    def test_blocks_per_access_formula(self):
        oram = make_oram(num_blocks=64)
        assert oram.blocks_per_access == 2 * (oram.levels + 1) * oram.bucket_size

    def test_paper_geometry(self):
        """L=24, Z=4 gives the ~100-block paths of the paper."""
        oram = PathOram(1 << 24, DeterministicRng(0), levels=24, bucket_size=4)
        assert (oram.levels + 1) * oram.bucket_size == 100


class TestDeadlock:
    def test_tiny_stash_overflows(self):
        # A heavily utilized tree (60 blocks in a 124-slot tree) with no
        # stash headroom eventually cannot evict everything back — the
        # failure mode the paper calls a potential deadlock.
        oram = PathOram(60, DeterministicRng(5), levels=4, stash_limit=0)
        rng = DeterministicRng(9)
        with pytest.raises(OramDeadlockError):
            for block in range(60):
                oram.write(block, b"fill")
            for _ in range(500):
                oram.read(rng.randrange(60))

    def test_generous_stash_survives(self):
        oram = make_oram(num_blocks=64, stash_limit=256)
        for block in range(64):
            oram.write(block, b"fill")
        assert oram.max_stash_seen <= 256


class TestTimingModel:
    def test_fixed_latency(self):
        engine = Engine()
        model = OramMemoryModel(engine, StatRegistry())
        done = []
        request = MemoryRequest(0, RequestType.READ)
        request.issue_time_ps = 0
        model.issue(request, lambda r: done.append(r))
        engine.run()
        assert done[0].latency_ps == ns_to_ps(2500)

    def test_unlimited_bandwidth(self):
        engine = Engine()
        model = OramMemoryModel(engine, StatRegistry())
        done = []
        for i in range(10):
            request = MemoryRequest(i * 64, RequestType.READ)
            request.issue_time_ps = 0
            model.issue(request, lambda r: done.append(r))
        engine.run()
        assert engine.now_ps == ns_to_ps(2500)  # all in parallel
        assert len(done) == 10

    def test_write_amplification_stat(self):
        engine = Engine()
        stats = StatRegistry()
        model = OramMemoryModel(engine, stats)
        model.issue(MemoryRequest(0, RequestType.WRITE), None)
        engine.run()
        assert stats.group("oram").get("cell_block_writes") == 100

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            OramMemoryModel(Engine(), StatRegistry(), access_latency_ns=0)
