"""Event engine: ordering, priorities, cancellation, safety rails."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, ns_to_ps, ps_to_ns


class TestTimeConversion:
    def test_ns_to_ps(self):
        assert ns_to_ps(1.25) == 1250

    def test_roundtrip(self):
        assert ps_to_ns(ns_to_ps(13.75)) == 13.75


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(300, lambda: order.append("c"))
        engine.schedule(100, lambda: order.append("a"))
        engine.schedule(200, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(50, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        engine = Engine()
        order = []
        engine.schedule(50, lambda: order.append("low"), priority=5)
        engine.schedule(50, lambda: order.append("high"), priority=0)
        engine.run()
        assert order == ["high", "low"]

    def test_time_advances_to_event(self):
        engine = Engine()
        engine.schedule(123, lambda: None)
        engine.run()
        assert engine.now_ps == 123

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            engine.schedule(10, lambda: times.append(engine.now_ps))

        engine.schedule(5, first)
        engine.run()
        assert times == [15]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(50, lambda: None)

    def test_schedule_at_absolute(self):
        engine = Engine()
        fired = []
        engine.schedule_at(77, lambda: fired.append(engine.now_ps))
        engine.run()
        assert fired == [77]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.run()
        handle.cancel()  # must not raise

    def test_pending_events_excludes_cancelled(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        assert engine.pending_events() == 1


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(1))
        engine.schedule(300, lambda: fired.append(2))
        engine.run(until_ps=200)
        assert fired == [1]
        assert engine.now_ps == 200
        engine.run()
        assert fired == [1, 2]

    def test_max_events_guards_livelock(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1, reschedule)

        engine.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_executed == 5

    def test_not_reentrant(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1, recurse)
        with pytest.raises(SimulationError):
            engine.run()
