"""Event engine: ordering, priorities, cancellation, safety rails."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, ns_to_ps, ps_to_ns


class TestTimeConversion:
    def test_ns_to_ps(self):
        assert ns_to_ps(1.25) == 1250

    def test_roundtrip(self):
        assert ps_to_ns(ns_to_ps(13.75)) == 13.75


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(300, lambda: order.append("c"))
        engine.schedule(100, lambda: order.append("a"))
        engine.schedule(200, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(50, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        engine = Engine()
        order = []
        engine.schedule(50, lambda: order.append("low"), priority=5)
        engine.schedule(50, lambda: order.append("high"), priority=0)
        engine.run()
        assert order == ["high", "low"]

    def test_time_advances_to_event(self):
        engine = Engine()
        engine.schedule(123, lambda: None)
        engine.run()
        assert engine.now_ps == 123

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            engine.schedule(10, lambda: times.append(engine.now_ps))

        engine.schedule(5, first)
        engine.run()
        assert times == [15]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(50, lambda: None)

    def test_schedule_at_absolute(self):
        engine = Engine()
        fired = []
        engine.schedule_at(77, lambda: fired.append(engine.now_ps))
        engine.run()
        assert fired == [77]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.run()
        handle.cancel()  # must not raise

    def test_pending_events_excludes_cancelled(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        assert engine.pending_events() == 1


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(1))
        engine.schedule(300, lambda: fired.append(2))
        engine.run(until_ps=200)
        assert fired == [1]
        assert engine.now_ps == 200
        engine.run()
        assert fired == [1, 2]

    def test_max_events_guards_livelock(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1, reschedule)

        engine.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_executed == 5

    def test_not_reentrant(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1, recurse)
        with pytest.raises(SimulationError):
            engine.run()

class TestHandleLifecycle:
    """EventHandle state across the schedule -> fire/cancel lifecycle."""

    def test_pending_true_before_fire(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        assert handle.pending
        assert not handle.fired
        assert not handle.cancelled

    def test_pending_false_after_fire(self):
        # Regression: handles used to report pending=True forever after the
        # event had already executed.
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.run()
        assert not handle.pending
        assert handle.fired
        assert not handle.cancelled

    def test_cancel_before_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        assert not handle.pending
        assert not handle.fired
        engine.run()
        assert fired == []
        assert not handle.fired  # cancellation is permanent

    def test_cancel_after_fire_keeps_fired_state(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.run()
        handle.cancel()  # no-op
        assert handle.fired
        assert not handle.cancelled

    def test_double_cancel_decrements_live_count_once(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending_events() == 1

    def test_time_ps_is_absolute_fire_time(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run()
        handle = engine.schedule(50, lambda: None)
        assert handle.time_ps == 150


class TestPendingEventsScaling:
    def test_pending_events_is_live_count_with_mass_cancellation(self):
        # O(1) pending_events: cancelled entries are tombstones in the heap
        # but must never be counted, however many there are.
        engine = Engine()
        handles = [engine.schedule(i + 1, lambda: None) for i in range(10_000)]
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending_events() == 5_000
        engine.run()
        assert engine.pending_events() == 0
        assert engine.events_executed == 5_000

    def test_tombstones_do_not_fire_between_live_events(self):
        engine = Engine()
        order = []
        keep = [engine.schedule(t, lambda t=t: order.append(t)) for t in (10, 30)]
        drop = [engine.schedule(t, lambda: order.append("BAD")) for t in (5, 20, 25)]
        for handle in drop:
            handle.cancel()
        engine.run()
        assert order == [10, 30]
        assert all(h.fired for h in keep)


class TestPost:
    def test_post_orders_like_schedule(self):
        engine = Engine()
        order = []
        engine.post(30, lambda: order.append("b"))
        engine.schedule(10, lambda: order.append("a"))
        engine.post(30, lambda: order.append("c"))  # same time: FIFO
        engine.run()
        assert order == ["a", "b", "c"]

    def test_post_at_absolute(self):
        engine = Engine()
        fired = []
        engine.post_at(42, lambda: fired.append(engine.now_ps))
        engine.run()
        assert fired == [42]

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().post(-1, lambda: None)

    def test_post_at_past_rejected(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.post_at(50, lambda: None)

    def test_post_counts_as_pending(self):
        engine = Engine()
        engine.post(10, lambda: None)
        assert engine.pending_events() == 1


class TestRawEntries:
    def test_post_entry_fires_and_cancel_entry_suppresses(self):
        engine = Engine()
        fired = []
        entry = engine.post_entry(10, lambda: fired.append(1))
        assert entry[0] == 10  # fire time is exposed for re-arm checks
        other = engine.post_entry(20, lambda: fired.append(2))
        engine.cancel_entry(other)
        assert engine.pending_events() == 1
        engine.run()
        assert fired == [1]

    def test_cancel_entry_after_fire_is_noop(self):
        engine = Engine()
        entry = engine.post_entry(10, lambda: None)
        engine.run()
        engine.cancel_entry(entry)  # must not raise or corrupt live count
        assert engine.pending_events() == 0


class TestInstrumentation:
    def test_default_instrument_counts_events(self):
        calls = []
        previous = Engine.default_instrument
        Engine.default_instrument = lambda time_ps, callback: calls.append(time_ps)
        try:
            engine = Engine()
            engine.schedule(10, lambda: None)
            engine.schedule(20, lambda: None)
            engine.run()
        finally:
            Engine.default_instrument = previous
        assert calls == [10, 20]

    def test_instrument_not_inherited_after_reset(self):
        previous = Engine.default_instrument
        Engine.default_instrument = lambda time_ps, callback: None
        try:
            instrumented = Engine()
        finally:
            Engine.default_instrument = previous
        clean = Engine()
        assert instrumented._instrument is not None
        assert clean._instrument is previous
