"""Clock domains and the statistics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import Clock
from repro.sim.statistics import StatGroup, StatRegistry


class TestClock:
    def test_two_ghz_period(self):
        assert Clock.from_frequency_ghz(2.0).period_ps == 500

    def test_cycles_to_ps(self):
        cpu = Clock.from_frequency_ghz(2.0)
        assert cpu.cycles_to_ps(17) == 8500

    def test_period_ns_constructor(self):
        aes = Clock.from_period_ns(4.0)
        assert aes.cycles_to_ps(24) == 96_000

    def test_ps_to_cycles(self):
        cpu = Clock.from_frequency_ghz(2.0)
        assert cpu.ps_to_cycles(1000) == 2.0

    def test_frequency_roundtrip(self):
        assert Clock.from_frequency_ghz(0.8).frequency_ghz == pytest.approx(0.8)

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            Clock(0)


class TestStatGroup:
    def test_counters_accumulate(self):
        group = StatGroup("g")
        group.add("hits")
        group.add("hits", 2)
        assert group.get("hits") == 3

    def test_missing_counter_reads_zero(self):
        assert StatGroup("g").get("nothing") == 0.0

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.add("x", 5)
        group.set("x", 1)
        assert group.get("x") == 1

    def test_ratio(self):
        group = StatGroup("g")
        group.add("hits", 3)
        group.add("total", 4)
        assert group.ratio("hits", "total") == 0.75
        assert group.ratio("hits", "missing") == 0.0

    def test_histogram_mean(self):
        group = StatGroup("g")
        for value in (10, 20, 30):
            group.record("latency", value)
        histogram = group.histogram("latency")
        assert histogram.mean == 20
        assert histogram.samples == 3
        assert histogram.minimum == 10
        assert histogram.maximum == 30

    def test_as_dict_namespacing(self):
        group = StatGroup("channel0")
        group.add("reads", 7)
        group.record("latency", 5)
        flat = group.as_dict()
        assert flat["channel0.reads"] == 7
        assert flat["channel0.latency.mean"] == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            StatGroup("")


class TestRegistry:
    def test_group_is_cached(self):
        registry = StatRegistry()
        assert registry.group("a") is registry.group("a")

    def test_as_dict_merges_groups(self):
        registry = StatRegistry()
        registry.group("a").add("x")
        registry.group("b").add("y", 2)
        flat = registry.as_dict()
        assert flat == {"a.x": 1, "b.y": 2}
