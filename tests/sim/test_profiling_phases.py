"""Phase attribution: ``--profile`` must split front end from engine time.

Engine event counts only explain the memory side of a run; the front end
(synthetic trace generation, kernel-to-hierarchy filtering) used to vanish
from ``--profile`` reports.  These tests pin the :func:`~repro.sim.profiling.phase`
instrument: a no-op without a session, an accumulator with one, and wired
into the generator, the kernel front end and the engine drive loop so a
captured run reports all three phases.
"""

import json

from repro.cpu.generator import make_trace
from repro.cpu.kernels import random_lookup_chunks, trace_through_hierarchy
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.mem.hierarchy import HierarchyConfig
from repro.sim import profiling
from repro.system.config import ProtectionLevel
from repro.system.simulator import run_trace


class TestPhaseInstrument:
    def test_noop_without_a_session(self):
        with profiling.phase("anything"):
            pass  # must not raise, must not record anywhere

    def test_accumulates_per_phase_within_a_session(self):
        with profiling.capture() as session:
            for _ in range(3):
                with profiling.phase("alpha"):
                    pass
            with profiling.phase("beta"):
                pass
        assert session.phases["alpha"]["calls"] == 3
        assert session.phases["beta"]["calls"] == 1
        assert session.phases["alpha"]["wall_s"] >= 0.0

    def test_session_restored_after_capture(self):
        with profiling.capture():
            pass
        with profiling.phase("after"):
            pass  # the module-level session is cleared again


class TestPhaseWiring:
    def test_front_end_and_engine_phases_are_attributed(self):
        with profiling.capture() as session:
            trace = make_trace(SPEC_PROFILES["astar"], 150, seed=4)
            kernel_trace, _ = trace_through_hierarchy(
                random_lookup_chunks(256 << 10, lookups=1500),
                HierarchyConfig(cores=1, l1_size=4 << 10, l3_size=64 << 10),
            )
            run_trace(trace, ProtectionLevel.UNPROTECTED)
        assert set(session.phases) >= {
            "trace_generation",
            "hierarchy_filtering",
            "engine",
        }
        assert session.phases["trace_generation"]["calls"] >= 1
        assert session.phases["hierarchy_filtering"]["calls"] >= 1
        assert session.phases["engine"]["calls"] >= 1

    def test_phases_appear_in_both_reports(self, tmp_path):
        with profiling.capture() as session:
            make_trace(SPEC_PROFILES["astar"], 100, seed=4)
        payload = session.to_jsonable("phase-test")
        assert "trace_generation" in payload["phases"]
        entry = payload["phases"]["trace_generation"]
        assert set(entry) == {"wall_s", "calls"}
        assert "wall time by phase:" in session.text_report("phase-test")
        json_path, text_path = session.write_reports(tmp_path, "phase-test")
        assert "trace_generation" in json.loads(json_path.read_text())["phases"]
        assert "trace_generation" in text_path.read_text()
