"""Engine checkpoint hooks: clean pauses, snapshot/restore, pickling."""

import functools
import pickle

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class _Recorder:
    """A picklable object graph: an engine plus callbacks that log into it.

    The pending callbacks are ``functools.partial`` over a bound method, so
    one ``pickle.dumps(recorder)`` captures the engine heap *and* the state
    the callbacks mutate — the same shape a full simulation checkpoint has.
    """

    def __init__(self):
        self.engine = Engine()
        self.order: list[str] = []

    def note(self, tag: str) -> None:
        self.order.append(tag)

    def arm(self, *tags: str) -> None:
        for offset, tag in enumerate(tags):
            self.engine.post(10 * (offset + 1), functools.partial(self.note, tag))


class TestStopAfterEvents:
    def test_pause_and_resume_matches_uninterrupted_run(self):
        paused, straight = _Recorder(), _Recorder()
        paused.arm("a", "b", "c", "d", "e")
        straight.arm("a", "b", "c", "d", "e")
        straight.engine.run()
        paused.engine.run(stop_after_events=2)
        assert paused.order == ["a", "b"]
        assert paused.engine.pending_events() == 3
        paused.engine.run(stop_after_events=2)
        paused.engine.run()
        assert paused.order == straight.order
        assert paused.engine.now_ps == straight.engine.now_ps
        assert paused.engine.events_executed == straight.engine.events_executed

    def test_limit_beyond_queue_finishes_cleanly(self):
        recorder = _Recorder()
        recorder.arm("a", "b")
        recorder.engine.run(stop_after_events=100)
        assert recorder.order == ["a", "b"]
        assert recorder.engine.pending_events() == 0

    def test_clean_stop_wins_a_tie_with_max_events(self):
        recorder = _Recorder()
        recorder.arm("a", "b", "c")
        recorder.engine.run(stop_after_events=2, max_events=2)
        assert recorder.order == ["a", "b"]

    def test_max_events_still_raises_when_tighter(self):
        recorder = _Recorder()
        recorder.arm("a", "b", "c")
        with pytest.raises(SimulationError, match="max_events"):
            recorder.engine.run(stop_after_events=3, max_events=2)

    def test_nonpositive_limit_is_a_noop(self):
        recorder = _Recorder()
        recorder.arm("a")
        recorder.engine.run(stop_after_events=0)
        assert recorder.order == []
        assert recorder.engine.pending_events() == 1


class TestSnapshotRestore:
    def test_restore_discards_later_scheduling(self):
        recorder = _Recorder()
        recorder.arm("a", "b")
        state = recorder.engine.snapshot()
        recorder.engine.post(5, functools.partial(recorder.note, "junk"))
        recorder.engine.restore(state)
        recorder.engine.run()
        assert recorder.order == ["a", "b"]

    def test_snapshot_mid_event_is_refused(self):
        engine = Engine()
        engine.post(1, lambda: pickle.dumps(engine))
        with pytest.raises(SimulationError, match="mid-event"):
            engine.run()

    def test_pickled_graph_resumes_bit_identically(self):
        recorder = _Recorder()
        recorder.arm("a", "b", "c", "d")
        recorder.engine.run(stop_after_events=2)
        blob = pickle.dumps(recorder, pickle.HIGHEST_PROTOCOL)
        recorder.engine.run()  # the original keeps going...
        thawed = pickle.loads(blob)  # ...and the copy resumes from the pause
        assert thawed.order == ["a", "b"]
        thawed.engine.run()
        assert thawed.order == recorder.order == ["a", "b", "c", "d"]
        assert thawed.engine.now_ps == recorder.engine.now_ps
        assert thawed.engine.events_executed == recorder.engine.events_executed

    def test_restored_engine_drops_the_instrument(self):
        """Instrument hooks are process-local: re-attached from the class."""
        recorder = _Recorder()
        recorder.arm("a", "b")
        blob = pickle.dumps(recorder, pickle.HIGHEST_PROTOCOL)
        seen = []
        Engine.default_instrument = lambda time_ps, callback: seen.append(time_ps)
        try:
            thawed = pickle.loads(blob)
            thawed.engine.run()
        finally:
            Engine.default_instrument = None
        assert seen == [10, 20]
