"""Cross-layer integration tests.

These exercise paths that no single-module test covers: a program address
stream flowing through the cache hierarchy into the protected memory
system; the functional crypto stack validated against a plain reference
model; the ORAM and ObfusMem stacks answering the same workload; and the
CLI entry points.
"""

import pytest

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.mem.request import BLOCK_SIZE_BYTES
from repro.oram.path_oram import PathOram
from repro.sim.statistics import StatRegistry
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_trace


class TestProgramToProtectedMemory:
    """CPU loads/stores -> cache hierarchy -> LLC misses -> ObfusMem."""

    def _collect_llc_traffic(self):
        """Run a blocked matrix-walk access pattern through the hierarchy
        and convert its memory traffic into a replayable trace."""
        hierarchy = CacheHierarchy(
            HierarchyConfig(
                cores=2,
                l1_size=4 << 10,
                l2_size=16 << 10,
                l3_size=64 << 10,
            ),
            StatRegistry(),
        )
        rng = DeterministicRng(42)
        records = []
        for step in range(6000):
            core = step % 2
            if rng.random() < 0.7:
                address = (step * 8) % (1 << 20)  # word-granular streaming
            else:
                address = rng.randrange(1 << 22) & ~63  # scattered
            result = hierarchy.access(core, address, is_write=rng.random() < 0.3)
            for request in result.memory_requests:
                records.append(
                    TraceRecord(
                        gap_ns=10.0,
                        address=request.address,
                        is_write=request.is_write,
                    )
                )
        return hierarchy, Trace("llc-traffic", records)

    def test_hierarchy_filters_traffic(self):
        hierarchy, trace = self._collect_llc_traffic()
        assert hierarchy.stats.get("l1_hits") > 1000  # streaming reuse
        assert hierarchy.stats.get("llc_misses") > 0
        # The hierarchy filters most accesses into far fewer misses.
        assert hierarchy.stats.get("llc_misses") < 0.8 * 6000
        assert len(trace) < 6000  # misses + write-backs

    def test_llc_traffic_runs_on_every_system(self):
        _, trace = self._collect_llc_traffic()
        results = {}
        for level in (
            ProtectionLevel.UNPROTECTED,
            ProtectionLevel.OBFUSMEM_AUTH,
            ProtectionLevel.ORAM,
        ):
            results[level] = run_trace(trace, level, MachineConfig(), window=4)
        base = results[ProtectionLevel.UNPROTECTED]
        assert results[ProtectionLevel.ORAM].execution_time_ns > (
            results[ProtectionLevel.OBFUSMEM_AUTH].execution_time_ns
        )
        assert results[ProtectionLevel.OBFUSMEM_AUTH].execution_time_ns >= (
            base.execution_time_ns
        )


class TestFunctionalStackAgainstReference:
    """The encrypted stack must behave exactly like a plain dict."""

    def test_randomized_consistency(self):
        rng = DeterministicRng(1234)
        stack = FunctionalObfusMem(
            session_key=rng.fork("s").token_bytes(16),
            memory_key=rng.fork("m").token_bytes(16),
            rng=rng,
            auth=AuthMode.ENCRYPT_AND_MAC,
        )
        reference: dict[int, bytes] = {}
        for step in range(300):
            address = rng.randrange(64) * BLOCK_SIZE_BYTES
            if rng.random() < 0.5:
                data = rng.token_bytes(BLOCK_SIZE_BYTES)
                stack.write(address, data)
                reference[address] = data
            elif address in reference:
                assert stack.read(address) == reference[address], f"step {step}"

    def test_oram_and_obfusmem_agree_on_data(self):
        """Both protection schemes are, functionally, just memory."""
        rng = DeterministicRng(77)
        oram = PathOram(64, rng.fork("oram"), stash_limit=512)
        stack = FunctionalObfusMem(
            session_key=rng.fork("s").token_bytes(16),
            memory_key=rng.fork("m").token_bytes(16),
            rng=rng.fork("stack"),
        )
        for step in range(150):
            block = rng.randrange(64)
            if rng.random() < 0.6:
                data = rng.token_bytes(BLOCK_SIZE_BYTES)
                oram.write(block, data)
                stack.write(block * BLOCK_SIZE_BYTES, data)
            else:
                oram_data = oram.read(block)
                stack_data = stack.read(block * BLOCK_SIZE_BYTES)
                if oram_data is not None:
                    # Unwritten blocks have no defined plaintext in either
                    # scheme (ObfusMem decrypts the zero ciphertext with a
                    # fresh pad); only written data must agree.
                    assert stack_data == oram_data


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        main(["list"])
        output = capsys.readouterr().out
        assert "bwaves" in output and "obfusmem_auth" in output

    def test_run(self, capsys):
        from repro.__main__ import main

        main(["run", "astar", "--requests", "200", "--baseline"])
        output = capsys.readouterr().out
        assert "overhead" in output

    def test_run_unknown_benchmark(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_experiments_runner_flags_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["experiments", "table1", "--workers", "2", "--no-cache"]
        )
        assert args.workers == 2 and args.no_cache and args.cache_dir is None
        args = build_parser().parse_args(
            ["report", "--fast", "--cache-dir", "/tmp/somewhere"]
        )
        assert args.cache_dir == "/tmp/somewhere" and args.workers is None

    def test_attacks(self, capsys):
        from repro.__main__ import main

        main(["attacks"])
        output = capsys.readouterr().out
        assert "BAD" not in output

    def test_report_fast(self, tmp_path, capsys):
        from repro.__main__ import main

        target = tmp_path / "report.md"
        main(
            [
                "report",
                "--fast",
                "-o",
                str(target),
            ]
        )
        content = target.read_text()
        assert "Table 3" in content
        assert "ObfusMem" in content
