"""Worker-pool supervisor tests: execution, crash requeue, kills, restarts.

The pool is driven directly (no service, no sockets) through a probe that
records the ``on_running`` / ``on_requeue`` / ``on_outcome`` callbacks,
so each supervision behaviour is pinned where it is implemented.  The
final test goes through :class:`~repro.serve.service.SimulationService`
to prove the kill-a-worker-mid-job story holds end to end: the job is
requeued, re-run, and still lands DONE.
"""

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.experiments.executor import JobSpec, result_to_jsonable
from repro.serve.jobs import JobBoard, JobState
from repro.serve.pool import WorkerPool
from repro.serve.service import ServiceConfig, SimulationService, decode_submission

from tests.serve.helpers import fast_jobspec, slow_spec


def slow_jobspec(seed: int) -> JobSpec:
    """A distinct-seeded slow JobSpec (~250 ms cold)."""
    return decode_submission(slow_spec(seed))[0]


class PoolProbe:
    """Collects pool callbacks so tests can wait on them from any thread."""

    def __init__(self):
        self.running = []
        self.requeued = []
        self.outcomes = {}
        self._changed = threading.Condition()

    def on_running(self, job, worker):
        with self._changed:
            self.running.append((job.id, worker))
            self._changed.notify_all()

    def on_requeue(self, job):
        with self._changed:
            self.requeued.append(job.id)
            self._changed.notify_all()

    def on_outcome(self, job, outcome):
        with self._changed:
            self.outcomes[job.id] = outcome
            self._changed.notify_all()

    def wait_outcome(self, job_id, timeout_s=120.0):
        """Block until ``job_id`` has an outcome; fail the test otherwise."""
        deadline = time.monotonic() + timeout_s
        with self._changed:
            while job_id not in self.outcomes:
                remaining = deadline - time.monotonic()
                assert remaining > 0, f"no outcome for {job_id} within {timeout_s}s"
                self._changed.wait(remaining)
            return self.outcomes[job_id]

    def wait_running(self, job_id, timeout_s=60.0):
        """Block until ``job_id`` was handed to a worker."""
        deadline = time.monotonic() + timeout_s
        with self._changed:
            while all(job_id != seen for seen, _w in self.running):
                remaining = deadline - time.monotonic()
                assert remaining > 0, f"{job_id} never started within {timeout_s}s"
                self._changed.wait(remaining)


def make_pool(probe, workers=1, **overrides):
    """A started cache-less pool reporting into ``probe``."""
    params = dict(
        cache_dir=None,
        on_running=probe.on_running,
        on_outcome=probe.on_outcome,
        on_requeue=probe.on_requeue,
    )
    params.update(overrides)
    return WorkerPool(workers, **params).start()


def busy_pid(pool, job_id, timeout_s=30.0):
    """The pid of the worker currently running ``job_id``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for row in pool.snapshot()["workers"]:
            if row["job"] == job_id:
                return row["pid"]
        time.sleep(0.005)
    raise AssertionError(f"no worker picked up {job_id}")


class TestExecution:
    def test_executes_and_reports_bit_identical_results(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe)
        try:
            job = board.create(fast_jobspec())
            pool.dispatch(job)
            outcome = probe.wait_outcome(job.id)
        finally:
            pool.stop()
        assert outcome.status == "ok"
        assert outcome.source == "simulated"
        assert outcome.sim_events > 0
        assert outcome.result_payload == result_to_jsonable(fast_jobspec().execute())
        probe.wait_running(job.id)  # on_running fired before the outcome

    def test_shard_routing_is_deterministic(self):
        probe = PoolProbe()
        pool = make_pool(probe, workers=4)
        try:
            digest = fast_jobspec().digest()
            shards = {pool._shard_of(digest) for _ in range(8)}
            assert len(shards) == 1
            assert 0 <= shards.pop() < 4
        finally:
            pool.stop()

    def test_persistent_workers_survive_across_jobs(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe)
        try:
            first = board.create(fast_jobspec())
            pool.dispatch(first)
            probe.wait_outcome(first.id)
            pid_before = pool.snapshot()["workers"][0]["pid"]
            second = board.create(fast_jobspec(seed=8))
            pool.dispatch(second)
            probe.wait_outcome(second.id)
            snapshot = pool.snapshot()
        finally:
            pool.stop()
        # Same process served both jobs: no fork-per-job.
        assert snapshot["workers"][0]["pid"] == pid_before
        assert snapshot["workers"][0]["completed"] == 2
        assert snapshot["restarts_total"] == 0


class TestSupervision:
    def test_worker_crash_requeues_job_until_it_completes(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe, max_requeues=2)
        try:
            job = board.create(slow_jobspec(seed=301))
            pool.dispatch(job)
            os.kill(busy_pid(pool, job.id), signal.SIGKILL)
            outcome = probe.wait_outcome(job.id)
            snapshot = pool.snapshot()
        finally:
            pool.stop()
        assert outcome.status == "ok"
        assert job.attempts == 1
        assert probe.requeued == [job.id]
        assert snapshot["restarts_total"] >= 1
        assert snapshot["requeues_total"] == 1
        # The replacement worker re-ran it from scratch.
        assert sum(1 for seen, _w in probe.running if seen == job.id) == 2

    def test_crash_past_requeue_budget_fails_the_job(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe, max_requeues=0)
        try:
            job = board.create(slow_jobspec(seed=302))
            pool.dispatch(job)
            os.kill(busy_pid(pool, job.id), signal.SIGKILL)
            outcome = probe.wait_outcome(job.id)
        finally:
            pool.stop()
        assert outcome.status == "failed"
        assert "worker process died" in outcome.error
        assert probe.requeued == []

    def test_deadline_kills_the_worker_process(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe)
        try:
            job = board.create(slow_jobspec(seed=303), timeout_s=0.05)
            pool.dispatch(job)
            doomed = busy_pid(pool, job.id)
            outcome = probe.wait_outcome(job.id)
            # Give the respawn a beat, then check the slot was replaced.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                row = pool.snapshot()["workers"][0]
                if row["alive"] and row["pid"] != doomed:
                    break
                time.sleep(0.005)
            row = pool.snapshot()["workers"][0]
        finally:
            pool.stop()
        assert outcome.status == "timeout"
        assert "timed out" in outcome.error
        assert row["pid"] != doomed and row["alive"]

    def test_cancel_running_kills_and_cancel_queued_removes(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe)
        try:
            running = board.create(slow_jobspec(seed=304))
            queued = board.create(slow_jobspec(seed=305))
            pool.dispatch(running)
            pool.dispatch(queued)
            busy_pid(pool, running.id)
            assert pool.cancel(queued) == "queued"
            assert pool.cancel(running) == "running"
            outcome = probe.wait_outcome(running.id)
            assert outcome.status == "cancelled"
            # The queued job was removed before any worker saw it: the
            # caller owns its fate and no outcome ever fires for it.
            assert queued.id not in probe.outcomes
            assert pool.cancel(queued) == "missing"
        finally:
            pool.stop()

    def test_stop_reports_leftovers_instead_of_dropping_them(self):
        board = JobBoard()
        probe = PoolProbe()
        pool = make_pool(probe)
        running = board.create(slow_jobspec(seed=306))
        queued = board.create(slow_jobspec(seed=307))
        pool.dispatch(running)
        pool.dispatch(queued)
        busy_pid(pool, running.id)
        pool.stop()
        for job in (running, queued):
            outcome = probe.wait_outcome(job.id, timeout_s=5.0)
            assert outcome.status in ("ok", "cancelled")


class TestServiceSupervision:
    def test_killed_worker_mid_job_still_lands_done(self):
        async def scenario():
            config = ServiceConfig(
                workers=1, queue_depth=4, cache_dir=None, retry_after_s=0.25
            )
            service = SimulationService(config)
            await service.start()
            try:
                job = service.submit(slow_jobspec(seed=308))
                assert await service.board.wait(
                    job, timeout_s=60.0, seen_transitions=1
                )
                pid = None
                deadline = time.monotonic() + 30.0
                while pid is None and time.monotonic() < deadline:
                    rows = service.metrics()["workers_detail"]
                    pid = next(
                        (row["pid"] for row in rows if row["job"] == job.id), None
                    )
                    if pid is None:
                        await asyncio.sleep(0.005)
                assert pid is not None, "worker never picked the job up"
                os.kill(pid, signal.SIGKILL)
                assert await service.board.wait(job, timeout_s=120.0)
                assert job.state is JobState.DONE
                assert job.attempts == 1
                states = [state for _t, state in job.transitions]
                # RUNNING -> (crash) QUEUED -> RUNNING -> DONE
                assert states.count("running") == 2
                assert states.count("queued") == 2
                metrics = service.metrics()
                assert metrics["worker_restarts"] >= 1
                assert metrics["counters"]["serve.requeued"] == 1.0
                assert metrics["workers_online"] == 1
            finally:
                await service.drain()

        asyncio.run(scenario())


@pytest.mark.parametrize("workers", [1, 3])
def test_snapshot_shape(workers):
    probe = PoolProbe()
    pool = make_pool(probe, workers=workers)
    try:
        snapshot = pool.snapshot()
    finally:
        pool.stop()
    assert snapshot["workers_online"] == workers
    assert snapshot["queued"] == 0 and snapshot["running"] == 0
    assert len(snapshot["workers"]) == workers
    for row in snapshot["workers"]:
        assert row["state"] == "idle" and row["alive"]
        assert isinstance(row["pid"], int)
