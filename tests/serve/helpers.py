"""Shared serve-test helpers: canonical fast and slow job specs."""

from repro.experiments.executor import JobSpec
from repro.system.config import ProtectionLevel

#: Fast spec: resolves in a few ms, so lifecycle tests stay snappy.
FAST_SPEC = dict(benchmark="astar", level="unprotected", num_requests=300, seed=7)

#: Slow cold spec (~250 ms simulated): long enough to observe QUEUED /
#: RUNNING states, cancel mid-run, and saturate a depth-limited queue.
SLOW_SPEC = dict(benchmark="mcf", level="obfusmem_auth", num_requests=4000, seed=11)


def fast_jobspec(**overrides) -> JobSpec:
    """The FAST_SPEC as a JobSpec object (for direct-execution comparisons)."""
    params = dict(FAST_SPEC)
    params.update(overrides)
    params["level"] = (
        ProtectionLevel(params["level"])
        if isinstance(params["level"], str)
        else params["level"]
    )
    return JobSpec(**params)


def slow_spec(seed: int) -> dict:
    """A distinct-seeded copy of SLOW_SPEC (distinct digests never coalesce)."""
    spec = dict(SLOW_SPEC)
    spec["seed"] = seed
    return spec
