"""Shared serve-test fixtures: ready-made server threads."""

import pytest

from repro.serve import ServerThread, ServiceConfig


@pytest.fixture
def cached_server(tmp_path):
    """A running server with 2 workers and a tmp persistent cache."""
    config = ServiceConfig(workers=2, queue_depth=8, cache_dir=tmp_path / "cache")
    with ServerThread(config) as server:
        yield server


@pytest.fixture
def tiny_server():
    """A 1-worker, depth-2, cache-less server: saturates with 3 slow jobs."""
    config = ServiceConfig(
        workers=1, queue_depth=2, cache_dir=None, retry_after_s=0.25
    )
    with ServerThread(config, drain_grace_s=120.0) as server:
        yield server
