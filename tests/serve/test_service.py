"""Service-core tests: admission, execution, coalescing, cancellation, drain.

These drive :class:`~repro.serve.service.SimulationService` directly on an
event loop — no sockets — so each behaviour is pinned at the layer that
implements it.  The HTTP translation of the same behaviours is covered by
``test_http_api.py``.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import result_to_jsonable
from repro.serve.jobs import JobState
from repro.serve.service import (
    ServeError,
    ServiceConfig,
    ServiceSaturated,
    SimulationService,
    decode_submission,
)

from tests.serve.helpers import FAST_SPEC, fast_jobspec, slow_spec


def run(coroutine):
    """Drive one scenario coroutine on a fresh loop."""
    return asyncio.run(coroutine)


def make_service(tmp_path=None, **overrides) -> SimulationService:
    params = dict(workers=2, queue_depth=4, cache_dir=None, retry_after_s=0.25)
    if tmp_path is not None:
        params["cache_dir"] = tmp_path / "cache"
    params.update(overrides)
    return SimulationService(ServiceConfig(**params))


class TestSubmitAndExecute:
    def test_submit_resolves_to_the_direct_result(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                job = service.submit(fast_jobspec())
                assert await service.board.wait(job, timeout_s=60.0)
                assert job.state is JobState.DONE
                assert job.source == "simulated"
                assert job.sim_events > 0
                direct = fast_jobspec().execute()
                assert result_to_jsonable(job.result) == result_to_jsonable(direct)
            finally:
                await service.drain()

        run(scenario())

    def test_repeat_submission_hits_the_cache(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                first = service.submit(fast_jobspec())
                assert await service.board.wait(first, timeout_s=60.0)
                second = service.submit(fast_jobspec())
                assert await service.board.wait(second, timeout_s=60.0)
                assert second.state is JobState.DONE
                assert second.source == "memory"
                assert result_to_jsonable(second.result) == result_to_jsonable(
                    first.result
                )
            finally:
                await service.drain()

        run(scenario())

    def test_disk_cache_spans_service_instances(self, tmp_path):
        async def scenario():
            first = make_service(tmp_path)
            await first.start()
            try:
                job = first.submit(fast_jobspec())
                assert await first.board.wait(job, timeout_s=60.0)
            finally:
                await first.drain()

            second = make_service(tmp_path)
            await second.start()
            try:
                warm = second.submit(fast_jobspec())
                assert await second.board.wait(warm, timeout_s=60.0)
                assert warm.source == "disk"
                assert result_to_jsonable(warm.result) == result_to_jsonable(
                    job.result
                )
            finally:
                await second.drain()

        run(scenario())

    def test_duplicate_inflight_submissions_coalesce(self):
        async def scenario():
            service = make_service(workers=2, queue_depth=8)
            await service.start()
            try:
                spec, _ = decode_submission(slow_spec(seed=21))
                leader = service.submit(spec)
                follower = service.submit(spec)
                assert await service.board.wait(leader, timeout_s=120.0)
                assert await service.board.wait(follower, timeout_s=120.0)
                assert leader.state is JobState.DONE
                assert follower.state is JobState.DONE
                sources = {leader.source, follower.source}
                # Exactly one of the two actually simulated.
                counters = service.stats.as_dict()
                assert counters["serve.simulations"] == 1.0
                assert "simulated" in sources
            finally:
                await service.drain()

        run(scenario())


class TestAdmissionControl:
    def test_saturated_queue_refuses_with_retry_hint(self):
        async def scenario():
            service = make_service(workers=1, queue_depth=2)
            await service.start()
            try:
                # No await between submits, so the worker cannot drain the
                # queue underneath us: depth 2 admits exactly two jobs.
                accepted = [
                    service.submit(decode_submission(slow_spec(seed))[0])
                    for seed in (31, 32)
                ]
                with pytest.raises(ServiceSaturated) as refusal:
                    service.submit(decode_submission(slow_spec(33))[0])
                assert refusal.value.retry_after_s > 0
                counters = service.stats.as_dict()
                assert counters["serve.rejected_saturated"] >= 1.0
                for job in accepted:
                    job.cancel.set()
                await service.drain()
                # Every accepted job reached a terminal state: none dropped.
                assert all(job.state.terminal for job in accepted)
            finally:
                await service.drain()

        run(scenario())

    def test_draining_service_refuses_submissions(self):
        async def scenario():
            service = make_service()
            await service.start()
            await service.drain()
            with pytest.raises(ServeError):
                service.submit(fast_jobspec())

        run(scenario())


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        async def scenario():
            service = make_service(workers=1, queue_depth=4)
            await service.start()
            try:
                blocker = service.submit(decode_submission(slow_spec(seed=51))[0])
                queued = service.submit(decode_submission(slow_spec(seed=52))[0])
                assert await service.cancel(queued)
                assert queued.state is JobState.CANCELLED
                assert await service.board.wait(blocker, timeout_s=120.0)
                await service.drain()
                # The cancelled job never transitioned through RUNNING.
                states = [state for _t, state in queued.transitions]
                assert "running" not in states
            finally:
                await service.drain()

        run(scenario())

    def test_cancel_running_job_terminates_it(self):
        async def scenario():
            service = make_service(workers=1, queue_depth=4)
            await service.start()
            try:
                job = service.submit(decode_submission(slow_spec(seed=53))[0])
                # Wait for RUNNING, then cancel mid-simulation.
                assert await service.board.wait(
                    job, timeout_s=60.0, seen_transitions=1
                )
                assert job.state is JobState.RUNNING
                assert await service.cancel(job)
                assert await service.board.wait(job, timeout_s=60.0)
                assert job.state is JobState.CANCELLED
                assert job.result is None
            finally:
                await service.drain()

        run(scenario())

    def test_cancel_finished_job_reports_false(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                job = service.submit(fast_jobspec())
                assert await service.board.wait(job, timeout_s=60.0)
                assert not await service.cancel(job)
                assert job.state is JobState.DONE
            finally:
                await service.drain()

        run(scenario())


class TestTimeouts:
    def test_per_job_timeout_kills_the_simulation(self):
        async def scenario():
            service = make_service(workers=1)
            await service.start()
            try:
                spec, timeout_s = decode_submission(
                    dict(slow_spec(seed=61), timeout_s=0.05)
                )
                job = service.submit(spec, timeout_s=timeout_s)
                assert await service.board.wait(job, timeout_s=60.0)
                assert job.state is JobState.TIMEOUT
                assert "timed out" in job.error
            finally:
                await service.drain()

        run(scenario())


class TestDrain:
    def test_drain_finishes_inflight_jobs(self):
        async def scenario():
            service = make_service(workers=2, queue_depth=8)
            await service.start()
            jobs = [
                service.submit(decode_submission(slow_spec(seed))[0])
                for seed in (71, 72, 73)
            ]
            await service.drain()  # grace default: long enough to finish
            assert all(job.state is JobState.DONE for job in jobs)
            assert service.draining

        run(scenario())

    def test_drain_past_grace_cancels_what_remains(self):
        async def scenario():
            service = make_service(workers=1, queue_depth=8)
            await service.start()
            jobs = [
                service.submit(decode_submission(slow_spec(seed))[0])
                for seed in (81, 82, 83, 84)
            ]
            await service.drain(grace_s=0.05)
            # Every accepted job is terminal — finished or cancelled, never
            # silently dropped.
            assert all(job.state.terminal for job in jobs)
            assert any(job.state is JobState.CANCELLED for job in jobs)

        run(scenario())


class TestDecodeSubmission:
    def test_decodes_spec_and_timeout(self):
        spec, timeout_s = decode_submission(dict(FAST_SPEC, timeout_s=2.5))
        assert spec.digest() == fast_jobspec().digest()
        assert timeout_s == 2.5

    def test_rejects_malformed_payloads(self):
        with pytest.raises(ConfigurationError):
            decode_submission(["not", "an", "object"])
        with pytest.raises(ConfigurationError):
            decode_submission({"benchmark": "astar"})  # missing level
        with pytest.raises(ConfigurationError):
            decode_submission(dict(FAST_SPEC, timeout_s="soon"))
        with pytest.raises(ConfigurationError):
            decode_submission(dict(FAST_SPEC, timeout_s=-1))
        with pytest.raises(ConfigurationError):
            decode_submission(dict(FAST_SPEC, warp_factor=9))

    def test_rejects_unknown_scheme_with_hint(self):
        with pytest.raises(ConfigurationError):
            decode_submission(dict(FAST_SPEC, level="obfusmen_auth"))


def test_metrics_shape(tmp_path):
    async def scenario():
        service = make_service(tmp_path)
        await service.start()
        try:
            job = service.submit(fast_jobspec())
            assert await service.board.wait(job, timeout_s=60.0)
            warm = service.submit(fast_jobspec())
            assert await service.board.wait(warm, timeout_s=60.0)
            metrics = service.metrics()
            assert metrics["state"] == "running"
            assert metrics["queue_capacity"] == 4
            assert metrics["cache_hits"] == 1.0
            assert metrics["cache_hit_ratio"] == 0.5
            assert metrics["sim_events_total"] > 0
            assert metrics["sim_events_per_sec"] > 0
            assert metrics["counters"]["serve.submitted"] == 2.0
        finally:
            await service.drain()

    run(scenario())
