"""Tests for the repro.serve subsystem (service, HTTP API, client)."""
