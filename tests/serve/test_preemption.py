"""Preemptible jobs: deadline slices checkpoint-and-requeue instead of kill.

With a persistent cache directory the pool gives each budgeted job its
timeout as a *slice* budget: a worker that cannot finish in time snapshots
the live world into the shared checkpoint store, replies ``preempted`` and
stays alive; the supervisor requeues the job and the next slice resumes
from the snapshot.  These tests pin that whole story at the pool layer
(callbacks, counters, no kills) and end to end through
:class:`~repro.serve.service.SimulationService` (PREEMPTED transitions,
``/metrics`` counters, the final result still bit-identical).
"""

import asyncio
import time

from repro.experiments.executor import JobSpec, result_to_jsonable
from repro.serve.jobs import JobBoard, JobState
from repro.serve.pool import WorkerPool
from repro.serve.service import ServiceConfig, SimulationService

from tests.serve.test_pool import PoolProbe


def long_jobspec(seed: int, n: int = 4000) -> JobSpec:
    """A distinct-seeded job slow enough to outlive a tiny slice budget."""
    return JobSpec(benchmark="mcf", level="obfusmem_auth", num_requests=n, seed=seed)


class PreemptProbe(PoolProbe):
    """PoolProbe plus the ``on_preempted`` callback stream."""

    def __init__(self):
        super().__init__()
        self.preempted = []

    def on_preempted(self, job, events, wall_ms, ckpt_hits, ckpt_misses):
        with self._changed:
            self.preempted.append((job.id, events, wall_ms, ckpt_hits, ckpt_misses))
            self._changed.notify_all()


def make_preemptible_pool(probe, tmp_path, workers=1, **overrides):
    params = dict(
        cache_dir=tmp_path / "cache",
        on_running=probe.on_running,
        on_outcome=probe.on_outcome,
        on_requeue=probe.on_requeue,
        on_preempted=probe.on_preempted,
    )
    params.update(overrides)
    return WorkerPool(workers, **params).start()


class TestPoolPreemption:
    def test_deadline_preempts_and_resumes_to_completion(self, tmp_path):
        board = JobBoard()
        probe = PreemptProbe()
        pool = make_preemptible_pool(probe, tmp_path)
        try:
            job = board.create(long_jobspec(seed=71), timeout_s=0.08)
            pool.dispatch(job)
            outcome = probe.wait_outcome(job.id)
            fleet = pool.snapshot()
        finally:
            pool.stop()
        # The budget was far too small for one slice, yet the job *finished*
        # — each expiry checkpointed and requeued instead of killing.
        assert outcome.status == "ok"
        assert outcome.source == "simulated"
        assert job.preemptions >= 1
        assert len(probe.preempted) == job.preemptions
        assert fleet["kills_total"] == 0
        assert fleet["preemptions_total"] == job.preemptions
        # The finishing slice resumed from a stored snapshot.
        assert outcome.checkpoint_hits == 1
        # Preempted slices reported real progress.
        for _job_id, events, _wall, _hits, _misses in probe.preempted:
            assert events > 0
        # And the stitched-together result is the cold result, bit for bit.
        direct = long_jobspec(seed=71).execute()
        assert outcome.result_payload == result_to_jsonable(direct)

    def test_preemption_budget_exhaustion_times_out_without_kills(self, tmp_path):
        board = JobBoard()
        probe = PreemptProbe()
        pool = make_preemptible_pool(
            probe, tmp_path, max_preemptions=1, preempt_grace_s=30.0
        )
        try:
            job = board.create(long_jobspec(seed=72, n=20_000), timeout_s=0.03)
            pool.dispatch(job)
            outcome = probe.wait_outcome(job.id)
            fleet = pool.snapshot()
        finally:
            pool.stop()
        assert outcome.status == "timeout"
        assert "preempted" in outcome.error
        assert job.preemptions == 2  # the slice past the limit resolves it
        assert fleet["kills_total"] == 0  # the worker was never terminated

    def test_cancel_during_preempted_requeue_wins(self, tmp_path):
        board = JobBoard()
        probe = PreemptProbe()
        pool = make_preemptible_pool(probe, tmp_path)
        try:
            job = board.create(long_jobspec(seed=73, n=20_000), timeout_s=0.05)
            pool.dispatch(job)
            deadline = time.monotonic() + 60.0
            while not probe.preempted:  # let at least one slice expire
                assert time.monotonic() < deadline
                time.sleep(0.005)
            job.cancel.set()
            outcome = probe.wait_outcome(job.id)
        finally:
            pool.stop()
        assert outcome.status == "cancelled"

    def test_cacheless_pool_still_kills_on_deadline(self, tmp_path):
        """Without a checkpoint store the old deadline-kill contract holds."""
        board = JobBoard()
        probe = PreemptProbe()
        pool = make_preemptible_pool(probe, tmp_path, cache_dir=None)
        try:
            job = board.create(long_jobspec(seed=74), timeout_s=0.05)
            pool.dispatch(job)
            outcome = probe.wait_outcome(job.id)
            fleet = pool.snapshot()
        finally:
            pool.stop()
        assert outcome.status == "timeout"
        assert probe.preempted == []
        assert fleet["kills_total"] == 1


class TestJobStateContract:
    def test_preempted_is_not_terminal(self):
        assert not JobState.PREEMPTED.terminal

    def test_preemptions_ship_in_the_job_json(self):
        job = JobBoard().create(long_jobspec(seed=75))
        job.preemptions = 3
        assert job.to_jsonable()["preemptions"] == 3


class TestServicePreemption:
    def test_long_job_completes_across_preempted_slices(self, tmp_path):
        async def scenario():
            service = SimulationService(
                ServiceConfig(
                    workers=1,
                    cache_dir=tmp_path / "cache",
                    default_timeout_s=0.08,
                )
            )
            await service.start()
            try:
                job = service.submit(long_jobspec(seed=81))
                assert await service.board.wait(job, timeout_s=120.0)
                # Preempted, resumed — and DONE, not TIMEOUT.
                assert job.state is JobState.DONE
                assert job.preemptions >= 1
                states = [state for _t, state in job.transitions]
                assert "preempted" in states
                assert states.index("preempted") < states.index("done")
                # Slice accounting accumulated onto the job record.
                assert job.sim_events > 0
                direct = long_jobspec(seed=81).execute()
                assert result_to_jsonable(job.result) == result_to_jsonable(direct)
                metrics = service.metrics()
                assert metrics["job_preemptions"] == job.preemptions
                assert metrics["checkpoint_hits"] >= 1
                assert metrics["checkpoint_misses"] >= 1
                assert 0.0 < metrics["checkpoint_hit_ratio"] < 1.0
                assert metrics["counters"]["serve.preempted"] == job.preemptions
                assert metrics["worker_kills"] == 0
            finally:
                await service.drain()

        asyncio.run(scenario())

    def test_preemption_progress_wakes_long_poll_waiters(self, tmp_path):
        """PREEMPTED transitions are visible to progress-stream waiters."""

        async def scenario():
            service = SimulationService(
                ServiceConfig(
                    workers=1,
                    cache_dir=tmp_path / "cache",
                    default_timeout_s=0.08,
                )
            )
            await service.start()
            try:
                job = service.submit(long_jobspec(seed=82))
                seen = len(job.transitions)
                states = []
                while not job.state.terminal:
                    assert await service.board.wait(
                        job, timeout_s=120.0, seen_transitions=seen
                    )
                    states.extend(
                        state for _t, state in job.transitions[seen:]
                    )
                    seen = len(job.transitions)
                assert "preempted" in states
                assert states[-1] == "done"
            finally:
                await service.drain()

        asyncio.run(scenario())
