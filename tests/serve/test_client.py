"""Client retry-policy tests against a scripted one-shot HTTP server.

The real service is deliberately absent here: each test scripts the exact
byte-level responses (429s, dropped connections, error statuses) so the
client's retry, backoff and error-translation behaviour is pinned without
any timing dependence on a live simulation.
"""

import json
import socket
import threading

import pytest

from repro.serve.client import (
    RequestFailed,
    ServeClient,
    ServerBusy,
    JobFailed,
)

from tests.serve.helpers import FAST_SPEC


def http_response(status: int, payload: dict, extra_headers: tuple = ()) -> bytes:
    """One full scripted HTTP/1.1 response, JSON body, connection-close."""
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} Scripted",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *extra_headers,
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class ScriptedServer:
    """Serve a fixed list of canned responses, one connection each.

    An item of ``b"..."`` is written verbatim; the sentinel string
    ``"drop"`` closes the connection without answering (the client sees
    ``RemoteDisconnected``, a ``ConnectionError``).
    """

    def __init__(self, script: list):
        self.script = list(script)
        self.requests: list[bytes] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "ScriptedServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._listener.close()
        self._thread.join(timeout=10.0)

    def _serve(self) -> None:
        for item in self.script:
            try:
                connection, _peer = self._listener.accept()
            except OSError:  # listener closed mid-script
                return
            try:
                self.requests.append(connection.recv(65536))
                if item != "drop":
                    connection.sendall(item)
            finally:
                connection.close()


def client_for(server: ScriptedServer, **overrides) -> ServeClient:
    """A fast-backoff client pointed at the scripted server."""
    params = dict(max_retries=3, backoff_s=0.001, backoff_cap_s=0.002)
    params.update(overrides)
    return ServeClient("127.0.0.1", server.port, **params)


JOB = {"id": "j000001-abcdef00", "state": "queued"}


class TestBusyRetries:
    def test_retries_429_until_accepted(self):
        script = [
            http_response(429, {"retry_after_s": 0.01}, ("Retry-After: 0.01",)),
            http_response(429, {"retry_after_s": 0.01}, ("Retry-After: 0.01",)),
            http_response(202, JOB),
        ]
        with ScriptedServer(script) as server:
            client = client_for(server)
            job = client.submit(FAST_SPEC)
        assert job == JOB
        assert client.stats["retries_busy"] == 2
        assert client.stats["requests"] == 3

    def test_server_busy_after_retry_budget(self):
        script = [
            http_response(429, {"retry_after_s": 0.5}, ("Retry-After: 0.5",))
        ] * 3
        with ScriptedServer(script) as server:
            client = client_for(server, max_retries=2, backoff_s=0.0)
            with pytest.raises(ServerBusy) as busy:
                client.submit(FAST_SPEC)
        assert busy.value.retry_after_s == 0.5
        assert client.stats["retries_busy"] == 2

    def test_retry_after_prefers_header_then_body(self):
        client = ServeClient(backoff_s=0.125)
        assert client._retry_after({"Retry-After": "2"}, {"retry_after_s": 9}) == 2.0
        assert client._retry_after({}, {"retry_after_s": 9}) == 9.0
        assert client._retry_after({"Retry-After": "soon"}, None) == 0.125


class TestConnectionRetries:
    def test_retries_dropped_connections(self):
        script = ["drop", "drop", http_response(200, {"status": "ok"})]
        with ScriptedServer(script) as server:
            client = client_for(server)
            assert client.healthz() == {"status": "ok"}
        assert client.stats["retries_connect"] == 2
        assert len(server.requests) == 3

    def test_connection_error_when_nothing_listens(self):
        with ScriptedServer([]) as server:
            port = server.port
        client = ServeClient("127.0.0.1", port, max_retries=1, backoff_s=0.0)
        with pytest.raises(ConnectionError):
            client.healthz()
        assert client.stats["requests"] == 2


class TestBackoffSchedule:
    def test_backoff_is_capped_exponential(self):
        class UpperBound:
            """An rng stub whose uniform() always returns the ceiling."""

            @staticmethod
            def uniform(low, high):
                return high

        client = ServeClient(backoff_s=0.1, backoff_cap_s=0.5, rng=UpperBound())
        schedule = [client._backoff(attempt) for attempt in range(5)]
        assert schedule == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_backoff_jitter_stays_in_range(self):
        client = ServeClient(backoff_s=0.1, backoff_cap_s=0.4)
        for attempt in range(6):
            value = client._backoff(attempt)
            assert 0.0 <= value <= 0.4


class TestErrorTranslation:
    def test_non_retryable_status_raises_request_failed(self):
        script = [http_response(404, {"error": "no route for /healthz"})]
        with ScriptedServer(script) as server:
            client = client_for(server)
            with pytest.raises(RequestFailed) as failure:
                client.healthz()
        assert failure.value.status == 404
        assert "no route" in str(failure.value)
        assert client.stats["requests"] == 1  # 404 is never retried

    def test_run_raises_job_failed_on_bad_terminal_state(self):
        failed_job = dict(JOB, state="failed", error="scheme exploded")
        script = [http_response(202, JOB), http_response(200, failed_job)]
        with ScriptedServer(script) as server:
            client = client_for(server)
            with pytest.raises(JobFailed) as failure:
                client.run(FAST_SPEC)
        assert failure.value.job["error"] == "scheme exploded"
        assert "failed" in str(failure.value)
