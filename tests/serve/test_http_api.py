"""End-to-end loopback tests: real sockets, real admission control.

The flagship assertions from the acceptance criteria live here: a result
obtained through the service is bit-identical (up to exact JSON float
round-tripping) to the same JobSpec executed directly; a saturated server
answers 429 with Retry-After and never drops an accepted job; SIGTERM-style
drain leaves every job terminal.
"""

import http.client
import json

import pytest

from repro.experiments.executor import result_to_jsonable
from repro.serve import LoadGenerator, ServerBusy, ServerThread, ServiceConfig
from repro.serve.jobs import JobState

from tests.serve.helpers import FAST_SPEC, fast_jobspec, slow_spec


class TestPlumbing:
    def test_healthz_and_metrics(self, cached_server):
        client = cached_server.client()
        assert client.healthz() == {"status": "ok"}
        metrics = client.metrics()
        assert metrics["state"] == "running"
        assert metrics["queue_capacity"] == 8
        assert metrics["workers"] == 2

    def test_schemes_lists_the_registry(self, cached_server):
        client = cached_server.client()
        schemes = client.schemes()
        names = {scheme["name"] for scheme in schemes}
        assert {"unprotected", "obfusmem_auth", "oram", "hide"} <= names
        auth = next(s for s in schemes if s["name"] == "obfusmem_auth")
        assert "authenticated" in auth["traits"]
        assert auth["stages"][-1] == "pcm-channels"

    def test_unknown_routes_and_jobs_are_404(self, cached_server):
        client = cached_server.client()
        status, _headers, payload = client.request("GET", "/nope")
        assert status == 404 and "error" in payload
        status, _headers, payload = client.request("GET", "/jobs/j999999-deadbeef")
        assert status == 404

    def test_malformed_submissions_are_400(self, cached_server):
        client = cached_server.client()
        status, _headers, payload = client.request("POST", "/jobs", {"level": "oram"})
        assert status == 400 and "benchmark" in payload["error"]
        status, _headers, payload = client.request(
            "POST", "/jobs", dict(FAST_SPEC, level="obfusmen_auth")
        )
        assert status == 400 and "obfusmem_auth" in payload["error"]  # hint

    def test_method_misuse_is_405(self, cached_server):
        client = cached_server.client()
        status, _headers, _payload = client.request("POST", "/healthz", {})
        assert status == 405
        status, _headers, _payload = client.request("DELETE", "/jobs")
        assert status == 405


class TestEndToEnd:
    def test_served_result_matches_direct_execution(self, cached_server):
        client = cached_server.client()
        served = client.run(FAST_SPEC)
        direct = result_to_jsonable(fast_jobspec().execute())
        assert served == direct  # bit-identical through the whole stack

    def test_repeat_submission_is_a_cache_hit(self, cached_server):
        client = cached_server.client()
        cold = client.run(FAST_SPEC)
        warm_job = client.submit(FAST_SPEC)
        final = client.wait(warm_job["id"], deadline_s=60.0)
        assert final["state"] == "done"
        assert final["source"] in ("memory", "disk", "coalesced")
        assert final["result"] == cold

    def test_long_poll_returns_completed_job(self, cached_server):
        client = cached_server.client()
        job = client.submit(FAST_SPEC)
        final = client.job(job["id"], wait_s=30.0)
        assert final["state"] == "done"
        assert [state for _t, state in final["transitions"]] == [
            "queued",
            "running",
            "done",
        ]

    def test_progress_event_stream(self, cached_server):
        client = cached_server.client()
        job = client.submit(FAST_SPEC)
        connection = http.client.HTTPConnection(
            "127.0.0.1", cached_server.port, timeout=60
        )
        try:
            connection.request("GET", f"/jobs/{job['id']}/events")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = [
                json.loads(line)
                for line in response.read().decode().strip().splitlines()
            ]
        finally:
            connection.close()
        states = [line["state"] for line in lines]
        assert states[0] == "queued"
        assert states[-1] == "done"
        assert lines[-1]["source"] in ("simulated", "memory", "disk", "coalesced")


class TestBackpressure:
    def test_saturated_server_answers_429_with_retry_after(self, tiny_server):
        raw = tiny_server.client(max_retries=0)
        accepted = []
        refusal = None
        # depth 2 + 1 worker: a burst of cold jobs must hit admission
        # control.  The low-level exchange exposes the raw status and
        # headers that the retrying client normally absorbs.
        for seed in range(101, 109):
            status, headers, payload = raw._once(
                "POST", "/jobs", json.dumps(slow_spec(seed)).encode()
            )
            if status == 202:
                accepted.append(payload)
                continue
            refusal = (status, headers, payload)
            break
        assert refusal is not None, "queue never saturated"
        status, headers, payload = refusal
        assert status == 429
        assert float(headers["Retry-After"]) > 0
        assert payload["retry_after_s"] > 0
        # The service itself stays responsive while saturated.
        assert raw.request("GET", "/metrics")[0] == 200
        # Accepted jobs are never dropped: every one reaches a terminal state.
        for job in accepted:
            raw.cancel(job["id"])
        for job in accepted:
            final = raw.wait(job["id"], deadline_s=120.0)
            assert final["state"] in ("done", "cancelled")

    def test_retrying_clients_ride_out_saturation(self, tiny_server):
        # Closed-loop load with more concurrency than the queue admits:
        # the clients' 429 retries must land every single request.
        generator = LoadGenerator(
            host="127.0.0.1",
            port=tiny_server.port,
            spec=slow_spec(seed=151),
            threads=3,
            requests_per_thread=2,
            deadline_s=300.0,
        )
        report = generator.run()
        assert report.failed == 0
        assert report.completed == 6
        assert len(report.latencies_s) == 6
        assert report.to_jsonable()["latency_p95_s"] >= report.to_jsonable()[
            "latency_p50_s"
        ]

    def test_busy_error_when_retry_budget_exhausts(self, tiny_server):
        raw = tiny_server.client(max_retries=0)
        with pytest.raises(ServerBusy) as busy:
            for seed in range(201, 209):
                raw.submit(slow_spec(seed))
        assert busy.value.retry_after_s > 0


class TestCancellation:
    def test_delete_cancels_a_running_job(self, tiny_server):
        client = tiny_server.client()
        job = client.submit(slow_spec(seed=161))
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] in ("queued", "running", "cancelled")
        final = client.wait(job["id"], deadline_s=60.0)
        assert final["state"] == "cancelled"
        assert "result" not in final

    def test_delete_after_completion_is_409(self, cached_server):
        client = cached_server.client()
        client.run(FAST_SPEC)
        jobs = client.request("GET", "/jobs")[2]["jobs"]
        done = next(job for job in jobs if job["state"] == "done")
        status, _headers, payload = client.request("DELETE", f"/jobs/{done['id']}")
        assert status == 409
        assert payload["job"]["state"] == "done"


class TestGracefulShutdown:
    def test_drain_finishes_inflight_and_refuses_new_work(self):
        config = ServiceConfig(workers=2, queue_depth=8, cache_dir=None)
        server = ServerThread(config).start()
        client = server.client()
        jobs = [client.submit(slow_spec(seed)) for seed in (171, 172, 173)]
        server.stop()  # the SIGTERM path: drain, then join
        board = server.service.board
        states = {job["id"]: board.get(job["id"]).state for job in jobs}
        assert all(state is JobState.DONE for state in states.values())
        # The socket is closed: new submissions cannot reach the service.
        with pytest.raises((ConnectionError, OSError)):
            server.client(max_retries=0).submit(FAST_SPEC)

    def test_drain_past_grace_cancels_leftovers(self):
        config = ServiceConfig(workers=1, queue_depth=8, cache_dir=None)
        server = ServerThread(config, drain_grace_s=0.05).start()
        client = server.client()
        jobs = [client.submit(slow_spec(seed)) for seed in range(181, 186)]
        server.stop()
        board = server.service.board
        finals = [board.get(job["id"]).state for job in jobs]
        assert all(state.terminal for state in finals)
        assert JobState.CANCELLED in finals
