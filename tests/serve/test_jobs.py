"""Unit tests for the job lifecycle model (states, board, waiting)."""

import asyncio

import pytest

from repro.serve.jobs import JobBoard, JobState

from tests.serve.helpers import fast_jobspec


def run(coroutine):
    """Drive one coroutine on a fresh event loop."""
    return asyncio.run(coroutine)


class TestJobState:
    def test_terminal_partition(self):
        terminal = {state for state in JobState if state.terminal}
        assert terminal == {
            JobState.DONE,
            JobState.FAILED,
            JobState.TIMEOUT,
            JobState.CANCELLED,
        }
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal


class TestJobBoard:
    def test_create_allocates_unique_ids_and_digest(self):
        async def scenario():
            board = JobBoard()
            first = board.create(fast_jobspec())
            second = board.create(fast_jobspec())
            assert first.id != second.id
            assert first.digest == second.digest == fast_jobspec().digest()
            assert first.state is JobState.QUEUED
            assert board.get(first.id) is first
            assert board.get("nope") is None
            assert len(board) == 2

        run(scenario())

    def test_advance_records_transitions_and_timestamps(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec())
            await board.advance(job, JobState.RUNNING)
            await board.advance(job, JobState.DONE, source="memory")
            assert [state for _t, state in job.transitions] == [
                "queued",
                "running",
                "done",
            ]
            assert job.started_at is not None
            assert job.finished_at is not None
            assert job.source == "memory"

        run(scenario())

    def test_terminal_states_are_sticky(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec())
            await board.advance(job, JobState.CANCELLED, error="gone")
            await board.advance(job, JobState.DONE, source="memory")
            assert job.state is JobState.CANCELLED
            assert job.error == "gone"

        run(scenario())

    def test_wait_returns_on_terminal_and_times_out(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec())
            assert not await board.wait(job, timeout_s=0.05)

            async def finish():
                await asyncio.sleep(0.02)
                await board.advance(job, JobState.DONE)

            task = asyncio.create_task(finish())
            assert await board.wait(job, timeout_s=5.0)
            await task

        run(scenario())

    def test_wait_wakes_on_intermediate_transition(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec())

            async def start_running():
                await asyncio.sleep(0.02)
                await board.advance(job, JobState.RUNNING)

            task = asyncio.create_task(start_running())
            assert await board.wait(job, timeout_s=5.0, seen_transitions=1)
            assert job.state is JobState.RUNNING  # woke before terminal
            await task

        run(scenario())

    def test_running_leader_lookup(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec())
            assert board.running_leader(job.digest) is job
            await board.advance(job, JobState.DONE)
            assert board.running_leader(job.digest) is None

        run(scenario())

    def test_to_jsonable_shapes(self):
        async def scenario():
            board = JobBoard()
            job = board.create(fast_jobspec(), timeout_s=1.5)
            payload = job.to_jsonable()
            assert payload["state"] == "queued"
            assert payload["benchmark"] == "astar"
            assert payload["level"] == "unprotected"
            assert payload["timeout_s"] == 1.5
            assert payload["digest"] == job.digest
            assert "result" not in payload
            assert payload["transitions"][0][1] == "queued"

        run(scenario())


@pytest.mark.parametrize("state", list(JobState))
def test_every_state_value_is_wire_safe(state):
    assert state.value.isalpha() and state.value.islower()
