"""Smoke-test the runnable examples (the fast ones, end to end)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "astar")
        assert "obfusmem_auth" in output
        assert "faster than ORAM" in output

    def test_quickstart_rejects_unknown_benchmark(self):
        process = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "doom"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode != 0

    def test_attack_lab(self):
        output = run_example("attack_lab.py")
        assert output.count("DETECTED") == 4
        assert "not detected at bus level" in output

    def test_secure_boot_and_storage(self):
        output = run_example("secure_boot_and_storage.py")
        assert "boot attestation passed" in output
        assert "malicious integrator detected" in output
        assert "read-back verified" in output

    @pytest.mark.slow
    def test_nvm_lifetime_planner(self):
        output = run_example("nvm_lifetime_planner.py", timeout=400)
        assert "dummy-address policy ablation" in output

    @pytest.mark.slow
    def test_application_kernels(self):
        output = run_example("application_kernels.py", timeout=400)
        assert "graph-chase" in output
        assert "multiprogrammed mix" in output
