"""Shared fixtures: keep the experiment runner hermetic under pytest.

The persistent result cache is great for regenerating the paper's tables
but wrong for tests: stale on-disk entries could mask a physics regression,
and parallel workers would skew timing-sensitive assertions.  Every test
therefore starts with the cache disabled and one worker; tests that
exercise the executor opt back in explicitly (always against a tmp_path
cache directory).
"""

import pytest

from repro.experiments import runner


@pytest.fixture(autouse=True)
def _hermetic_runner_config():
    runner.configure(workers=1, cache_enabled=False)
    yield
    runner.configure(workers=1, cache_enabled=False)
