"""The §3.2 dictionary attacker and the §3.5 active forgery battery."""

import pytest

from repro.attacks import AttackInput, WorkloadCapture, get_attacker
from repro.attacks.dictionary import DictionaryAttacker
from repro.attacks.tamper import TamperAttacker, address_flip_attack
from repro.core.config import AuthMode
from tests.attacks.test_passive import capture, cipher_wire, command, plain_wire


def observed(transfers, scheme="unprotected"):
    return AttackInput(
        scheme=scheme, channels=1, captures={"w": (capture(transfers),)}
    )


class TestDictionaryLinkability:
    def test_deterministic_wire_links_every_repeat(self):
        transfers = [
            command(time_ps=i * 1_000, address=(i % 8) * 64) for i in range(40)
        ]
        outcome = DictionaryAttacker().attack(observed(transfers))
        assert outcome.advantage == 1.0
        assert outcome.evidence["linkable_pairs"] == 32
        assert outcome.evidence["matched"] == 32

    def test_read_write_repeat_links_via_the_address_field(self):
        """A read-then-write pair differs only in the type byte; the
        known-layout address field still links the two encodings."""
        transfers = [
            command(time_ps=0, address=0x4000, is_write=False),
            command(time_ps=1_000, address=0x4000, is_write=True),
        ]
        outcome = DictionaryAttacker().attack(observed(transfers))
        assert outcome.advantage == 1.0
        assert outcome.evidence == {"linkable_pairs": 1, "matched": 1}

    def test_one_time_encodings_never_link(self):
        transfers = [
            command(time_ps=i * 1_000, address=(i % 8) * 64, wire=cipher_wire(i))
            for i in range(40)
        ]
        outcome = DictionaryAttacker().attack(observed(transfers, "obfusmem"))
        assert outcome.advantage == 0.0
        assert outcome.evidence["linkable_pairs"] == 32
        assert outcome.evidence["matched"] == 0

    def test_no_repeats_means_no_signal(self):
        transfers = [command(time_ps=i * 1_000, address=i * 64) for i in range(20)]
        outcome = DictionaryAttacker().attack(observed(transfers))
        assert outcome.advantage == 0.0
        assert outcome.evidence["linkable_pairs"] == 0

    def test_dummy_commands_are_not_scored(self):
        transfers = [
            command(time_ps=i * 1_000, address=0x1000, dummy=True) for i in range(10)
        ]
        assert (
            DictionaryAttacker()
            .attack(observed(transfers))
            .evidence["linkable_pairs"]
            == 0
        )


def battery(scheme):
    return TamperAttacker().attack(AttackInput(scheme=scheme, channels=1))


class TestTamperBattery:
    def test_plaintext_wire_accepts_every_forgery(self):
        outcome = battery("unprotected")
        assert outcome.advantage == 1.0
        assert outcome.evidence["mode"] == "plaintext-wire"

    def test_opaque_backend_exposes_no_wire(self):
        outcome = battery("oram")
        assert outcome.advantage == 0.0
        assert outcome.evidence["mode"] == "opaque-backend"

    def test_mac_catches_the_address_flip_that_encryption_misses(self):
        plain = battery("obfusmem")
        authed = battery("obfusmem_auth")
        assert plain.evidence["address_flip"] == "undetected"
        assert authed.evidence["address_flip"] == "detected"
        # Data tampering is deferred to the Merkle tree for both (Obs. 4).
        assert plain.evidence["data_tamper"] == "undetected"
        assert authed.evidence["data_tamper"] == "undetected"
        assert plain.advantage > authed.advantage
        assert authed.advantage == pytest.approx(1 / 6)

    def test_address_flip_direct_harness(self):
        assert address_flip_attack(AuthMode.ENCRYPT_AND_MAC).detected
        assert not address_flip_attack(AuthMode.NONE).detected


class TestLegacyShims:
    def test_analysis_attacks_reexports_registry_primitives(self):
        from repro.analysis import attacks as shim
        from repro.attacks import dictionary, tamper

        assert shim.dictionary_attack is dictionary.dictionary_attack
        assert shim.EcbAddressObfuscation is dictionary.EcbAddressObfuscation
        assert shim.replay_attack is tamper.replay_attack
        assert shim.command_bitflip_attack is tamper.command_bitflip_attack

    def test_registry_wrappers_are_registered(self):
        assert isinstance(get_attacker("dictionary"), DictionaryAttacker)
        assert isinstance(get_attacker("tamper"), TamperAttacker)


class TestCaptureViews:
    def test_real_commands_excludes_dummies_and_unannotated(self):
        from repro.mem.bus import BusTransfer, Direction, TransferKind

        unannotated = BusTransfer(
            time_ps=2,
            channel=0,
            kind=TransferKind.COMMAND,
            direction=Direction.TO_MEMORY,
            wire_bytes=plain_wire(0x3000),
        )
        cap = WorkloadCapture(
            "w",
            0,
            (
                command(time_ps=0, address=0x1000),
                command(time_ps=1, address=0x2000, dummy=True),
                unannotated,
            ),
        )
        assert len(cap.commands()) == 3
        real = cap.real_commands()
        assert len(real) == 1 and real[0].plaintext_address == 0x1000
