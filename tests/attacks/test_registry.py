"""Attacker registry mechanics, base helpers and the --list-attacks CLI."""

import argparse

import pytest

from repro.attacks import (
    AttackInput,
    AttackOutcome,
    Attacker,
    add_attack_arguments,
    attacker_names,
    available_attackers,
    format_attack_list,
    get_attacker,
    hash_coin,
    normalized_advantage,
    register_attacker,
    unregister_attacker,
    wire_address,
    wire_is_write,
)
from repro.errors import ConfigurationError

EXPECTED_NAMES = [
    "dictionary",
    "fingerprint",
    "type_recovery",
    "footprint",
    "channel_correlation",
    "rebuild_timing",
    "tamper",
]


class _StubAttacker(Attacker):
    name = "stub"
    summary = "does nothing"

    def attack(self, observed):
        return AttackOutcome(self.name, observed.scheme, 0.0, 0.0, 0.0)

    def expects_leak(self, expected):
        return False


class TestRegistry:
    def test_registration_order_is_stable(self):
        assert attacker_names() == EXPECTED_NAMES
        assert [a.name for a in available_attackers()] == EXPECTED_NAMES

    def test_lookup_and_close_match_hint(self):
        assert get_attacker("fingerprint").name == "fingerprint"
        with pytest.raises(ConfigurationError, match="dictionary"):
            get_attacker("dictionnary")

    def test_register_unregister_roundtrip(self):
        register_attacker(_StubAttacker())
        try:
            assert get_attacker("stub").summary == "does nothing"
            with pytest.raises(ConfigurationError, match="already registered"):
                register_attacker(_StubAttacker())
            register_attacker(_StubAttacker(), replace=True)  # explicit replace ok
        finally:
            unregister_attacker("stub")
        assert "stub" not in attacker_names()
        unregister_attacker("stub")  # absent names are a no-op

    def test_empty_name_rejected(self):
        stub = _StubAttacker()
        stub.name = ""
        with pytest.raises(ConfigurationError):
            register_attacker(stub)

    def test_metadata_serializes(self):
        payload = get_attacker("tamper").to_jsonable()
        assert payload["name"] == "tamper"
        assert payload["kind"] == "active"
        assert payload["seeds_needed"] == 0
        assert 0.0 < payload["leak_threshold"] <= 1.0
        assert "describe" not in payload and "§3.5" in get_attacker("tamper").describe()


class TestCli:
    def test_listing_covers_every_attacker(self):
        listing = format_attack_list()
        for name in EXPECTED_NAMES:
            assert name in listing

    def test_list_attacks_flag_exits_cleanly(self, capsys):
        parser = argparse.ArgumentParser()
        add_attack_arguments(parser)
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--list-attacks"])
        assert excinfo.value.code == 0
        assert "fingerprint" in capsys.readouterr().out


class TestWireHelpers:
    def test_wire_is_write_accepts_both_layouts(self):
        assert wire_is_write(b"\x01" + b"\x00" * 8) is True
        assert wire_is_write(b"\x00" + b"\x00" * 8) is False
        assert wire_is_write(b"\x5b" + b"\x00" * 8) is True
        assert wire_is_write(b"\x0a" + b"\x00" * 8) is False
        assert wire_is_write(b"\x77" + b"\x00" * 8) is None
        assert wire_is_write(b"") is None

    def test_wire_address_decodes_the_address_field(self):
        wire = b"\x00" + (0xABC0).to_bytes(8, "big") + b"\xff" * 7
        assert wire_address(wire) == 0xABC0

    def test_hash_coin_is_deterministic_and_in_range(self):
        draws = [hash_coin(i, "salt", modulus=4) for i in range(64)]
        assert draws == [hash_coin(i, "salt", modulus=4) for i in range(64)]
        assert set(draws) <= {0, 1, 2, 3}
        assert len(set(draws)) > 1  # not a constant
        assert hash_coin("anything", modulus=0) == 0  # degenerate modulus


class TestNormalizedAdvantage:
    def test_scale_and_clipping(self):
        assert normalized_advantage(1.0, 0.5) == 1.0
        assert normalized_advantage(0.5, 0.5) == 0.0
        assert normalized_advantage(0.25, 0.5) == 0.0  # below baseline clips
        assert normalized_advantage(0.75, 0.5) == pytest.approx(0.5)
        assert normalized_advantage(1.0, 1.0) == 0.0  # degenerate baseline

    def test_outcome_json_roundtrip(self):
        outcome = AttackOutcome(
            "fingerprint", "obfusmem", 0.25, 0.5, 0.625, {"tests": 4}
        )
        assert AttackOutcome.from_jsonable(outcome.to_jsonable()) == outcome


class TestAttackInput:
    def test_workloads_sorted(self):
        observed = AttackInput(scheme="x", channels=1, captures={"b": (), "a": ()})
        assert observed.workloads() == ["a", "b"]
