"""Passive attackers on synthetic captures: each leakage channel isolated."""

import hashlib

import pytest

from repro.analysis.leakage import expected_leakage
from repro.attacks import AttackInput, WorkloadCapture, get_attacker
from repro.attacks.passive import (
    ChannelCorrelationAttacker,
    FingerprintAttacker,
    FootprintAttacker,
    RebuildTimingAttacker,
    TypeRecoveryAttacker,
)
from repro.mem.bus import BusTransfer, Direction, TransferKind

_METADATA_REGION_BASE = 31 << 28  # where counter-block traffic lives


def plain_wire(address, is_write=False):
    """The unprotected scheduler's command layout."""
    return (b"\x01" if is_write else b"\x00") + address.to_bytes(8, "big") + b"\x00" * 7


def packet_wire(address, is_write=False):
    """The secure packet layout, decrypted (0x0A read / 0x5B write)."""
    return bytes([0x5B if is_write else 0x0A]) + address.to_bytes(8, "big") + b"\x00" * 7


def cipher_wire(*tag):
    """A ciphertext-looking wire: pseudo-random, never a valid type code."""
    digest = hashlib.blake2b(repr(tag).encode(), digest_size=16).digest()
    first = digest[0]
    if first in (0x00, 0x01, 0x0A, 0x5B):
        first ^= 0x80
    return bytes([first]) + digest[1:]


def command(
    time_ps=0, channel=0, address=0x1000, is_write=False, dummy=False, wire=None
):
    if wire is None:
        wire = plain_wire(address, is_write)
    return BusTransfer(
        time_ps=time_ps,
        channel=channel,
        kind=TransferKind.COMMAND,
        direction=Direction.TO_MEMORY,
        wire_bytes=wire,
        plaintext_address=address,
        plaintext_is_write=is_write,
        is_dummy=dummy,
    )


def pulse(time_ps):
    return BusTransfer(
        time_ps=time_ps,
        channel=0,
        kind=TransferKind.PULSE,
        direction=Direction.TO_MEMORY,
        wire_bytes=b"",
    )


def capture(transfers, workload="w", seed=0):
    return WorkloadCapture(workload, seed, tuple(transfers))


def scatter(i, seed, span_blocks=1 << 22):
    """A pseudo-random block address inside region 0."""
    digest = hashlib.blake2b(f"{i}|{seed}".encode(), digest_size=8).digest()
    return (int.from_bytes(digest, "big") % span_blocks) * 64


class TestFingerprint:
    def _streaming(self, seed, metadata=False):
        transfers = []
        for i in range(300):
            transfers.append(command(time_ps=i * 1_000, address=(seed * 7 + i) * 64))
            if metadata and i % 3 == 0:
                transfers.append(
                    command(
                        time_ps=i * 1_000 + 500,
                        address=_METADATA_REGION_BASE + (i % 64) * 64,
                    )
                )
        return capture(transfers, "stream", seed)

    def _scattered(self, seed):
        return capture(
            [
                command(time_ps=i * 1_000, address=scatter(i, seed))
                for i in range(300)
            ],
            "random",
            seed,
        )

    def test_distinct_workloads_classified_perfectly(self):
        observed = AttackInput(
            scheme="unprotected",
            channels=1,
            captures={
                "stream": tuple(self._streaming(seed) for seed in range(3)),
                "random": tuple(self._scattered(seed) for seed in range(3)),
            },
        )
        outcome = FingerprintAttacker().attack(observed)
        assert outcome.baseline == pytest.approx(0.5)
        assert outcome.advantage == 1.0

    def test_metadata_region_is_filtered_out(self):
        """Interleaved counter-region traffic must not pollute the features."""
        attacker = FingerprintAttacker()
        clean = attacker._features(self._streaming(0))
        mixed = attacker._features(self._streaming(0, metadata=True))
        assert mixed == clean

    def test_ciphertext_collapses_to_baseline(self):
        def noise(workload, seed):
            return capture(
                [
                    command(time_ps=i * 1_000, wire=cipher_wire(workload, seed, i))
                    for i in range(300)
                ],
                workload,
                seed,
            )

        observed = AttackInput(
            scheme="obfusmem",
            channels=1,
            captures={
                w: tuple(noise(w, seed) for seed in range(3))
                for w in ("stream", "random")
            },
        )
        outcome = FingerprintAttacker().attack(observed)
        # Every capture degenerates to the identical default feature vector:
        # classification is exactly the random-guess baseline, advantage 0.
        assert outcome.advantage == 0.0

    def test_single_workload_yields_no_advantage(self):
        observed = AttackInput(
            scheme="unprotected",
            channels=1,
            captures={"stream": tuple(self._streaming(seed) for seed in range(3))},
        )
        assert FingerprintAttacker().attack(observed).advantage == 0.0


class TestTypeRecovery:
    def _typed_capture(self, wire_builder):
        return capture(
            [
                command(
                    time_ps=i * 1_000,
                    address=i * 64,
                    is_write=i % 3 == 0,
                    wire=wire_builder(i * 64, i % 3 == 0),
                )
                for i in range(200)
            ]
        )

    @pytest.mark.parametrize("layout", [plain_wire, packet_wire])
    def test_both_public_layouts_leak_fully(self, layout):
        observed = AttackInput(
            scheme="unprotected",
            channels=1,
            captures={"w": (self._typed_capture(layout),)},
        )
        outcome = TypeRecoveryAttacker().attack(observed)
        assert outcome.score == 1.0 and outcome.advantage == 1.0

    def test_ciphertext_degenerates_to_a_coin(self):
        transfers = [
            command(
                time_ps=i * 1_000,
                address=i * 64,
                is_write=i % 3 == 0,
                wire=cipher_wire("type", i),
            )
            for i in range(600)
        ]
        observed = AttackInput(
            scheme="obfusmem", channels=1, captures={"w": (capture(transfers),)}
        )
        outcome = TypeRecoveryAttacker().attack(observed)
        assert outcome.baseline == 0.5
        assert outcome.advantage < 0.25  # well below the 0.5 leak threshold


class TestFootprint:
    def test_deterministic_wire_recovers_exactly(self):
        transfers = [
            command(time_ps=i * 1_000, address=(i % 32) * 64, is_write=i % 5 == 0)
            for i in range(320)
        ]
        observed = AttackInput(
            scheme="unprotected", channels=1, captures={"w": (capture(transfers),)}
        )
        outcome = FootprintAttacker().attack(observed)
        assert outcome.advantage == 1.0
        assert outcome.evidence == {"estimated_blocks": 32, "true_blocks": 32}

    def test_one_time_encodings_explode_the_estimate(self):
        transfers = [
            command(time_ps=i * 1_000, address=(i % 32) * 64, wire=cipher_wire(i))
            for i in range(320)
        ]
        observed = AttackInput(
            scheme="obfusmem", channels=1, captures={"w": (capture(transfers),)}
        )
        assert FootprintAttacker().attack(observed).advantage == 0.0


class TestChannelCorrelation:
    def test_uncovered_channels_recovered_outright(self):
        transfers = [
            command(time_ps=i * 1_000_000, channel=i % 4, address=i * 64)
            for i in range(100)
        ]
        observed = AttackInput(
            scheme="unprotected", channels=4, captures={"w": (capture(transfers),)}
        )
        outcome = ChannelCorrelationAttacker().attack(observed)
        assert outcome.baseline == pytest.approx(0.25)
        assert outcome.advantage == 1.0

    def test_cover_traffic_pins_the_attacker_near_baseline(self):
        transfers = []
        for i in range(100):
            anchor = i * 1_000_000
            serving = i % 4
            transfers.append(
                command(time_ps=anchor, channel=serving, address=i * 64)
            )
            for other in range(4):
                if other != serving:
                    transfers.append(
                        command(
                            time_ps=anchor + 100,
                            channel=other,
                            address=0xFFC0,
                            dummy=True,
                        )
                    )
        observed = AttackInput(
            scheme="obfusmem", channels=4, captures={"w": (capture(transfers),)}
        )
        outcome = ChannelCorrelationAttacker().attack(observed)
        assert outcome.advantage < ChannelCorrelationAttacker.leak_threshold

    def test_single_channel_has_nothing_to_infer(self):
        observed = AttackInput(scheme="unprotected", channels=1, captures={})
        assert ChannelCorrelationAttacker().attack(observed).advantage == 0.0


class TestRebuildTiming:
    def _trace(self, burst_sizes, demand=60, burst_period_ps=10_000_000):
        transfers = [pulse(i * 500_000) for i in range(demand)]
        start = demand * 500_000 + 1_000_000
        for b, size in enumerate(burst_sizes):
            base = start + b * burst_period_ps
            transfers += [pulse(base + i * 1_000) for i in range(size)]
        return capture(sorted(transfers, key=lambda t: t.time_ps))

    def _attack(self, trace):
        observed = AttackInput(
            scheme="oram_ring", channels=1, captures={"w": (trace,)}
        )
        return RebuildTimingAttacker().attack(observed)

    def test_uniform_periodic_bursts_detected(self):
        outcome = self._attack(self._trace([200] * 5))
        assert outcome.advantage >= RebuildTimingAttacker.leak_threshold
        assert outcome.evidence["bursts"] == 5

    def test_irregular_burst_sizes_rejected(self):
        outcome = self._attack(self._trace([40, 200, 400, 80, 300]))
        assert outcome.advantage == 0.0

    def test_too_few_bursts_rejected(self):
        assert self._attack(self._trace([200] * 2)).advantage == 0.0

    def test_pure_demand_traffic_scores_zero(self):
        assert self._attack(self._trace([])).advantage == 0.0


class TestExpectedLeakIntegration:
    """expects_leak predictions line up with the trait-derived expectations."""

    @pytest.mark.parametrize(
        "attack, scheme, leaks",
        [
            ("fingerprint", "unprotected", True),
            ("fingerprint", "encryption_only", True),
            ("fingerprint", "obfusmem", False),
            ("fingerprint", "oram", False),
            ("type_recovery", "hide", True),
            ("type_recovery", "obfusmem_auth", False),
            ("footprint", "hide_encrypted", True),
            ("footprint", "obfusmem", False),
            ("channel_correlation", "unprotected", True),
            ("channel_correlation", "obfusmem", False),
            ("rebuild_timing", "oram_ring", True),
            ("rebuild_timing", "pyramid", True),
            ("rebuild_timing", "oram", False),
            ("rebuild_timing", "obfusmem", False),
            ("dictionary", "unprotected", True),
            ("dictionary", "obfusmem", False),
            ("tamper", "unprotected", True),
            ("tamper", "obfusmem_auth", False),
        ],
    )
    def test_prediction(self, attack, scheme, leaks):
        attacker = get_attacker(attack)
        assert attacker.expects_leak(expected_leakage(scheme)) is leaks
