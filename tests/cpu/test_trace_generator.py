"""Traces, the synthetic generator, and the Table 1 profiles."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.generator import SyntheticTraceGenerator, make_trace
from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.errors import TraceError


class TestTraceRecord:
    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(gap_ns=-1, address=0, is_write=False)

    def test_unaligned_address_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(gap_ns=0, address=3, is_write=False)

    def test_dependent_write_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(gap_ns=0, address=0, is_write=True, dependent=True)


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace("empty", [])

    def test_derived_statistics(self):
        records = [
            TraceRecord(10, 0, False),
            TraceRecord(10, 64, True),
            TraceRecord(10, 0, False),
        ]
        trace = Trace("t", records, instructions_per_request=100)
        assert trace.read_fraction == pytest.approx(2 / 3)
        assert trace.footprint_blocks == 2
        assert trace.total_instructions == 300

    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace(SPEC_PROFILES["bwaves"], 50)
        path = tmp_path / "bwaves.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        assert loaded.instructions_per_request == pytest.approx(
            trace.instructions_per_request
        )
        for original, restored in zip(trace, loaded):
            assert restored.address == original.address
            assert restored.is_write == original.is_write
            assert restored.dependent == original.dependent
            assert restored.gap_ns == pytest.approx(original.gap_ns, abs=1e-3)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# trace t ipr=100\n1.0 0x40 R\nbogus line here\n")
        with pytest.raises(TraceError, match=":3"):
            Trace.load(path)


class TestGeneratorStatistics:
    def test_deterministic(self):
        profile = SPEC_PROFILES["mcf"]
        a = make_trace(profile, 100, seed=5)
        b = make_trace(profile, 100, seed=5)
        assert [r.address for r in a] == [r.address for r in b]

    def test_seed_changes_trace(self):
        profile = SPEC_PROFILES["mcf"]
        a = make_trace(profile, 100, seed=5)
        b = make_trace(profile, 100, seed=6)
        assert [r.address for r in a] != [r.address for r in b]

    def test_write_fraction_close_to_profile(self):
        profile = SPEC_PROFILES["bwaves"]
        trace = make_trace(profile, 4000)
        writes = sum(1 for r in trace if r.is_write)
        assert writes / len(trace) == pytest.approx(profile.write_fraction, abs=0.03)

    def test_mean_gap_close_to_calibration(self):
        profile = SPEC_PROFILES["libquantum"]
        trace = make_trace(profile, 4000)
        mean_gap = statistics.mean(r.gap_ns for r in trace)
        assert mean_gap == pytest.approx(profile.compute_gap_ns, rel=0.1)

    def test_dependent_fraction_close(self):
        profile = SPEC_PROFILES["xalan"]  # high dependence
        trace = make_trace(profile, 4000)
        reads = [r for r in trace if not r.is_write]
        dependent = sum(1 for r in reads if r.dependent)
        assert dependent / len(reads) == pytest.approx(
            profile.dependent_fraction, abs=0.05
        )

    def test_footprint_bounded_by_profile(self):
        profile = SPEC_PROFILES["astar"]
        trace = make_trace(profile, 2000)
        footprint_bytes = profile.footprint_mib << 20
        assert all(r.address < footprint_bytes for r in trace)

    def test_streaming_has_sequential_runs(self):
        streaming = make_trace(SPEC_PROFILES["bwaves"], 2000)
        pointer = make_trace(SPEC_PROFILES["mcf"], 2000)

        def sequential_fraction(trace):
            pairs = zip(trace.records, trace.records[1:])
            return sum(1 for a, b in pairs if b.address - a.address == 64) / len(trace)

        assert sequential_fraction(streaming) > 2 * sequential_fraction(pointer)


class TestProfiles:
    def test_all_fifteen_present(self):
        assert len(BENCHMARK_NAMES) == 15
        assert "bwaves" in BENCHMARK_NAMES and "gems" in BENCHMARK_NAMES

    def test_table1_values_recorded(self):
        mcf = SPEC_PROFILES["mcf"]
        assert mcf.ipc == 0.17
        assert mcf.llc_mpki == 24.82
        assert mcf.avg_gap_ns == 74.95

    def test_calibration_sane(self):
        for profile in SPEC_PROFILES.values():
            assert profile.window >= 1
            assert 0.0 <= profile.dependent_fraction <= 1.0
            assert profile.compute_gap_ns >= 1.0
            assert profile.compute_gap_ns <= profile.avg_gap_ns + 1e-9

    def test_bandwidth_bound_benchmarks_have_wide_windows(self):
        assert SPEC_PROFILES["bwaves"].window > SPEC_PROFILES["astar"].window

    def test_instructions_per_request(self):
        assert SPEC_PROFILES["mcf"].instructions_per_request == pytest.approx(
            1000 / 24.82
        )


@settings(max_examples=10, deadline=None)
@given(num_requests=st.integers(min_value=1, max_value=200))
def test_generator_length_property(num_requests):
    profile = SPEC_PROFILES["cactus"]
    generator = SyntheticTraceGenerator(profile, DeterministicRng(1))
    assert len(generator.generate(num_requests)) == num_requests
