"""Trace-driven core: windowing, dependence, completion semantics."""

import pytest

from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import Trace, TraceRecord
from repro.errors import ConfigurationError, SimulationError
from repro.mem.request import MemoryRequest
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry


class FixedLatencyPort:
    """Test double: completes reads after a fixed latency; counts traffic."""

    def __init__(self, engine, latency_ns=100.0):
        self.engine = engine
        self.latency_ps = ns_to_ps(latency_ns)
        self.issued = []
        self.in_flight = 0
        self.max_in_flight = 0

    def issue(self, request: MemoryRequest, callback):
        self.issued.append(request)
        if callback is None:
            return
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)

        def finish():
            self.in_flight -= 1
            request.complete_time_ps = self.engine.now_ps
            callback(request)

        self.engine.schedule(self.latency_ps, finish)


def reads(n, gap=10.0, dependent=False):
    return [
        TraceRecord(gap_ns=gap, address=i * 64, is_write=False, dependent=dependent)
        for i in range(n)
    ]


def run_core(records, window=4, latency_ns=100.0):
    engine = Engine()
    port = FixedLatencyPort(engine, latency_ns)
    trace = Trace("test", records)
    core = TraceDrivenCore(engine, trace, port, window=window, stats=StatRegistry())
    core.start()
    engine.run()
    return core, port


class TestWindow:
    def test_window_caps_outstanding_reads(self):
        core, port = run_core(reads(20, gap=1.0), window=3)
        assert port.max_in_flight == 3

    def test_wider_window_finishes_faster(self):
        narrow, _ = run_core(reads(20, gap=1.0), window=1)
        wide, _ = run_core(reads(20, gap=1.0), window=8)
        assert wide.execution_time_ns < narrow.execution_time_ns

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            run_core(reads(1), window=0)


class TestDependence:
    def test_dependent_reads_serialize(self):
        independent, _ = run_core(reads(10, gap=1.0), window=8)
        dependent, _ = run_core(reads(10, gap=1.0, dependent=True), window=8)
        # Each dependent read waits the full latency: ~10x100ns.
        assert dependent.execution_time_ns > 9 * 100
        assert dependent.execution_time_ns > 3 * independent.execution_time_ns


class TestWrites:
    def test_writes_do_not_block(self):
        records = [
            TraceRecord(gap_ns=1.0, address=i * 64, is_write=True) for i in range(10)
        ]
        core, port = run_core(records, window=1)
        # All posted immediately: execution bounded by compute gaps alone.
        assert core.execution_time_ns < 20
        assert len(port.issued) == 10


class TestCompletion:
    def test_finish_waits_for_outstanding_reads(self):
        core, _ = run_core(reads(3, gap=1.0), window=8, latency_ns=500)
        assert core.execution_time_ns >= 500

    def test_execution_time_unavailable_before_finish(self):
        engine = Engine()
        port = FixedLatencyPort(engine)
        core = TraceDrivenCore(
            engine, Trace("t", reads(2)), port, window=1, stats=StatRegistry()
        )
        with pytest.raises(SimulationError):
            _ = core.execution_time_ns

    def test_double_start_rejected(self):
        engine = Engine()
        port = FixedLatencyPort(engine)
        core = TraceDrivenCore(
            engine, Trace("t", reads(2)), port, window=1, stats=StatRegistry()
        )
        core.start()
        with pytest.raises(SimulationError):
            core.start()

    def test_average_gap_and_ipc(self):
        core, _ = run_core(reads(10, gap=50.0), window=8)
        assert core.average_gap_ns == core.execution_time_ns / 10
        assert core.measured_ipc(2.0) > 0

    def test_issue_order_preserved(self):
        core, port = run_core(reads(10, gap=1.0), window=2)
        addresses = [r.address for r in port.issued]
        assert addresses == sorted(addresses)
