"""Front-end equivalence: the fast path must be bit-identical to the oracle.

The slot-array hierarchy + batched kernel streaming rewrite is a pure
performance change; :mod:`repro.mem.reference` preserves the original
dict/dataclass implementation verbatim as the behavioural oracle, reachable
via ``trace_through_hierarchy(..., reference=True)``.  These tests pin the
equivalence the whole PR rests on: for every kernel and across hierarchy
shapes, the fast path's trace is record-for-record identical and every
statistics counter matches — so cached traces, experiment results and the
paper's numbers are unchanged by the optimisation.
"""

import pytest

from repro.cpu import kernels
from repro.errors import ConfigurationError
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.mem.reference import ReferenceCacheHierarchy
from repro.sim.statistics import StatRegistry

#: Small-but-thrashing shapes so every kernel exercises all miss levels.
CONFIGS = {
    "single-core": HierarchyConfig(
        cores=1, l1_size=4 << 10, l2_size=16 << 10, l3_size=64 << 10
    ),
    "dual-core-narrow-l3": HierarchyConfig(
        cores=2, l1_size=8 << 10, l2_size=32 << 10, l3_size=128 << 10, l3_assoc=4
    ),
}

#: Every registered kernel, sized to overflow the configs above.
KERNEL_CASES = {
    "sequential_scan": lambda: kernels.sequential_scan_chunks(
        256 << 10, passes=2, stride=16, write_fraction=0.3
    ),
    "random_lookup": lambda: kernels.random_lookup_chunks(512 << 10, lookups=3000),
    "pointer_chase": lambda: kernels.pointer_chase_chunks(256 << 10, hops=20000),
    "stencil": lambda: kernels.stencil_chunks(128 << 10, sweeps=2, row_bytes=1024),
}


def stat_snapshot(hierarchy) -> dict[str, dict[str, float]]:
    """Every counter of every stat group a hierarchy owns, by group name."""
    snapshot = {
        "hierarchy": hierarchy.stats.counters(),
        "l3": hierarchy.l3.stats.counters(),
    }
    for core, (l1, l2) in enumerate(zip(hierarchy.l1, hierarchy.l2)):
        snapshot[f"l1.{core}"] = l1.stats.counters()
        snapshot[f"l2.{core}"] = l2.stats.counters()
    return snapshot


class TestTraceEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
    def test_fast_path_matches_reference(self, kernel_name, config_name):
        config = CONFIGS[config_name]
        make = KERNEL_CASES[kernel_name]
        fast_trace, fast = kernels.trace_through_hierarchy(
            make(), config, name=kernel_name
        )
        ref_trace, ref = kernels.trace_through_hierarchy(
            make(), config, name=kernel_name, reference=True
        )
        assert isinstance(fast, CacheHierarchy)
        assert isinstance(ref, ReferenceCacheHierarchy)
        assert fast_trace.name == ref_trace.name
        assert fast_trace.records == ref_trace.records  # record-for-record
        assert fast.instructions == ref.instructions
        assert stat_snapshot(fast) == stat_snapshot(ref)

    def test_chunk_size_never_changes_the_trace(self):
        config = CONFIGS["single-core"]
        make = KERNEL_CASES["random_lookup"]
        baseline, _ = kernels.trace_through_hierarchy(make(), config)
        for chunk_accesses in (1, 7, 4096):
            stream = kernels.random_lookup_chunks(
                512 << 10, lookups=3000, chunk_accesses=chunk_accesses
            )
            trace, _ = kernels.trace_through_hierarchy(stream, config)
            assert trace.records == baseline.records

    def test_plain_iterable_stream_matches_chunked(self):
        config = CONFIGS["single-core"]
        pairs = list(KERNEL_CASES["stencil"]().flatten())
        from_chunks, _ = kernels.trace_through_hierarchy(
            KERNEL_CASES["stencil"](), config
        )
        from_pairs, _ = kernels.trace_through_hierarchy(iter(pairs), config)
        assert from_pairs.records == from_chunks.records


class TestMulticoreEquivalence:
    def test_interleaved_batches_match_per_access_oracle(self):
        """Round-robin batches across cores == the same interleave one-by-one."""
        config = CONFIGS["dual-core-narrow-l3"]
        streams = [
            list(
                kernels.sequential_scan_chunks(
                    192 << 10, passes=2, stride=32, write_fraction=0.4
                ).flatten()
            ),
            list(kernels.random_lookup_chunks(384 << 10, lookups=4000).flatten()),
        ]
        fast = CacheHierarchy(config, StatRegistry())
        ref = ReferenceCacheHierarchy(config, StatRegistry())
        fast_traffic: list[tuple[int, bool]] = []
        ref_records: list[tuple[int, bool]] = []
        batch = 257  # deliberately unaligned with any set or chunk size
        for start in range(0, max(map(len, streams)), batch):
            for core, stream in enumerate(streams):
                window = stream[start : start + batch]
                fast.access_batch(core, window, fast_traffic)
                for address, is_write in window:
                    result = ref.access(core, address, is_write)
                    ref_records.extend(
                        (request.address, request.is_write)
                        for request in result.memory_requests
                    )
        assert fast_traffic == ref_records
        assert stat_snapshot(fast) == stat_snapshot(ref)

    def test_per_access_interface_matches_reference(self):
        """The retained access() API agrees with the oracle call-for-call."""
        config = CONFIGS["single-core"]
        fast = CacheHierarchy(config, StatRegistry())
        ref = ReferenceCacheHierarchy(config, StatRegistry())
        for address, is_write in KERNEL_CASES["pointer_chase"]().flatten():
            fast_result = fast.access(0, address, is_write)
            ref_result = ref.access(0, address, is_write)
            assert fast_result.hit_level == ref_result.hit_level
            assert fast_result.latency_cycles == ref_result.latency_cycles
            # request_id is a process-global ticket, so compare the payload
            # fields the trace actually consumes.
            assert [
                (request.address, request.request_type, request.core_id)
                for request in fast_result.memory_requests
            ] == [
                (request.address, request.request_type, request.core_id)
                for request in ref_result.memory_requests
            ]
        fast.flush_stats()
        assert stat_snapshot(fast) == stat_snapshot(ref)


class TestFrontEndErrors:
    def test_trafficless_kernel_raises_on_both_paths(self):
        config = HierarchyConfig(cores=1)
        for reference in (False, True):
            with pytest.raises(ConfigurationError, match="no memory traffic"):
                kernels.trace_through_hierarchy(
                    kernels.sequential_scan_chunks(4 << 10, passes=0),
                    config,
                    reference=reference,
                )
