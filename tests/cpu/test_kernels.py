"""Application kernels and the kernel-to-trace pipeline."""

import pytest

from repro.cpu.kernels import (
    pointer_chase,
    random_lookup,
    sequential_scan,
    stencil,
    trace_through_hierarchy,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.hierarchy import HierarchyConfig
from repro.system.config import ProtectionLevel
from repro.system.simulator import run_trace

SMALL_HIERARCHY = HierarchyConfig(
    cores=1, l1_size=4 << 10, l2_size=16 << 10, l3_size=64 << 10
)


class TestKernelStreams:
    def test_sequential_scan_covers_array(self):
        accesses = list(sequential_scan(1024, stride=64))
        assert [a for a, _ in accesses] == list(range(0, 1024, 64))
        assert all(not w for _, w in accesses)

    def test_sequential_scan_with_writes(self):
        accesses = list(
            sequential_scan(4096, write_fraction=1.0, rng=DeterministicRng(1))
        )
        assert all(w for _, w in accesses)

    def test_random_lookup_touches_whole_records(self):
        accesses = list(random_lookup(1 << 16, lookups=5, record_bytes=64))
        assert len(accesses) == 5 * 8  # 8 words per 64B record
        # Each lookup's accesses are consecutive words of one record.
        first_record = accesses[:8]
        base = first_record[0][0]
        assert [a for a, _ in first_record] == [base + 8 * i for i in range(8)]

    def test_pointer_chase_visits_all_nodes_before_repeat(self):
        accesses = [a for a, _ in pointer_chase(64 * 16, hops=16)]
        assert len(set(accesses)) == 16

    def test_stencil_reads_neighbours_writes_centre(self):
        accesses = list(stencil(3 * 4096, sweeps=1))
        reads = [a for a, w in accesses if not w]
        writes = [a for a, w in accesses if w]
        assert len(reads) == 2 * len(writes)
        assert all(4096 <= a < 2 * 4096 for a in writes)  # centre row

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            list(sequential_scan(0))
        with pytest.raises(ConfigurationError):
            list(random_lookup(32, 1))
        with pytest.raises(ConfigurationError):
            list(pointer_chase(32, 1))
        with pytest.raises(ConfigurationError):
            list(stencil(4096))


class TestKernelToTrace:
    def test_scan_produces_streaming_misses(self):
        trace, hierarchy = trace_through_hierarchy(
            sequential_scan(1 << 20, stride=8), SMALL_HIERARCHY, name="scan"
        )
        # One miss per 64B block of the 1MB array (8 accesses per block).
        assert hierarchy.stats.get("l1_hits") > hierarchy.stats.get("llc_misses")
        assert trace.footprint_blocks == pytest.approx((1 << 20) // 64, rel=0.05)

    def test_pointer_chase_defeats_caches(self):
        trace, hierarchy = trace_through_hierarchy(
            pointer_chase(1 << 20, hops=4000), SMALL_HIERARCHY, name="chase"
        )
        misses = hierarchy.stats.get("llc_misses")
        assert misses / 4000 > 0.8  # nearly every hop misses

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError, match="no memory traffic"):
            trace_through_hierarchy(iter(()), SMALL_HIERARCHY, name="empty")

    def test_second_pass_mostly_hits(self):
        """A cache-resident array misses only on the first pass."""
        trace, hierarchy = trace_through_hierarchy(
            sequential_scan(8 << 10, passes=4), SMALL_HIERARCHY, name="resident"
        )
        # 128 compulsory block misses; the other 3 passes hit.
        assert hierarchy.stats.get("llc_misses") <= 140

    def test_kernel_trace_runs_protected(self):
        trace, _ = trace_through_hierarchy(
            random_lookup(1 << 20, lookups=500), SMALL_HIERARCHY, name="kv"
        )
        result = run_trace(trace, ProtectionLevel.OBFUSMEM_AUTH, window=4)
        assert result.execution_time_ns > 0
        assert result.stats.get("channel0.dummy_writes", 0) > 0
