"""SimWorld checkpoints: pause, freeze, thaw, retarget — bit-identically."""

import multiprocessing

import pytest

from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.errors import CheckpointError
from repro.experiments.executor import _fork_context
from repro.system.world import CHECKPOINT_VERSION, SimCheckpoint, SimWorld

SEED = 2017


def _world(benchmark="mcf", scheme="obfusmem_auth", n=300, cores=1, seed=SEED):
    profile = SPEC_PROFILES[benchmark]
    traces = [
        make_trace(profile, n, seed=seed + 1000 * i) for i in range(cores)
    ]
    return SimWorld(traces, scheme, window=profile.window, seed=seed)


def _straight_result(**kwargs):
    world = _world(**kwargs)
    assert world.run() is True
    return world.result()


class TestSlicedExecution:
    def test_sliced_run_matches_single_shot(self):
        straight = _straight_result()
        sliced = _world()
        hops = 0
        while not sliced.run(stop_after_events=500):
            hops += 1
        assert hops >= 1
        paused = sliced.result()
        assert paused.execution_time_ns == straight.execution_time_ns
        assert paused.stats == straight.stats

    def test_run_after_finish_is_a_noop(self):
        world = _world(n=100)
        assert world.run() is True
        events = world.events_executed
        assert world.run() is True
        assert world.events_executed == events


class TestSnapshotThaw:
    @pytest.mark.parametrize("scheme", ["unprotected", "obfusmem_auth", "oram"])
    def test_thawed_world_finishes_bit_identically(self, scheme):
        straight = _straight_result(scheme=scheme)
        world = _world(scheme=scheme)
        while not world.run(stop_after_events=700):
            world = world.snapshot().thaw()  # every pause crosses a pickle
        resumed = world.result()
        assert resumed.execution_time_ns == straight.execution_time_ns
        assert resumed.stats == straight.stats

    def test_snapshot_metadata_describes_the_pause(self):
        world = _world(cores=2)
        world.run(stop_after_events=400)
        checkpoint = world.snapshot()
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.events_executed == world.events_executed
        assert checkpoint.now_ps == world.engine.now_ps
        assert checkpoint.num_requests == 600
        assert len(checkpoint.issued_indices) == 2
        assert checkpoint.benchmark == "mcf"
        assert checkpoint.scheme == "obfusmem_auth"
        assert not checkpoint.finished

    def test_wire_form_round_trips(self):
        world = _world(n=150)
        world.run(stop_after_events=300)
        checkpoint = world.snapshot()
        straight = _straight_result(n=150)
        wired = SimCheckpoint.from_jsonable(checkpoint.to_jsonable())
        assert wired == checkpoint
        thawed = wired.thaw()
        thawed.run()
        assert thawed.result().stats == straight.stats

    def test_damaged_payload_is_refused(self):
        world = _world(n=100)
        world.run(stop_after_events=200)
        checkpoint = world.snapshot()
        record = checkpoint.to_jsonable()
        record["digest"] = "0" * 64
        with pytest.raises(CheckpointError, match="digest"):
            SimCheckpoint.from_jsonable(record).thaw()

    def test_version_skew_is_refused(self):
        world = _world(n=100)
        world.run(stop_after_events=200)
        record = world.snapshot().to_jsonable()
        record["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            SimCheckpoint.from_jsonable(record).thaw()

    def test_malformed_record_is_refused(self):
        with pytest.raises(CheckpointError, match="malformed"):
            SimCheckpoint.from_jsonable({"version": 1})


class TestSafePrefixAndRetarget:
    def test_safe_prefix_holds_mid_trace_and_clears_at_the_end(self):
        world = _world(n=200)
        world.run(stop_after_events=300)
        assert world.safe_prefix
        world.run()
        assert not world.safe_prefix

    def test_forked_run_matches_cold_long_run(self):
        cold = _straight_result(n=600)
        short = _world(n=300)
        short.run(stop_after_events=800)
        checkpoint = short.snapshot()
        assert checkpoint.safe_prefix
        forked = checkpoint.thaw()
        profile = SPEC_PROFILES["mcf"]
        forked.retarget([make_trace(profile, 600, seed=SEED)])
        forked.run()
        warm = forked.result()
        assert warm.num_requests == 600
        assert warm.execution_time_ns == cold.execution_time_ns
        assert warm.stats == cold.stats

    def test_retarget_refuses_non_extending_traces(self):
        world = _world(n=200)
        world.run(stop_after_events=300)
        profile = SPEC_PROFILES["mcf"]
        with pytest.raises(CheckpointError, match="does not extend"):
            world.retarget([make_trace(profile, 400, seed=SEED + 1)])

    def test_retarget_refuses_wrong_core_count(self):
        world = _world(n=200)
        world.run(stop_after_events=300)
        profile = SPEC_PROFILES["mcf"]
        longer = make_trace(profile, 400, seed=SEED)
        with pytest.raises(CheckpointError, match="cores"):
            world.retarget([longer, longer])

    def test_retarget_refuses_past_the_safe_prefix(self):
        world = _world(n=120)
        world.run()
        profile = SPEC_PROFILES["mcf"]
        with pytest.raises(CheckpointError, match="safe prefix"):
            world.retarget([make_trace(profile, 400, seed=SEED)])


def _resume_in_child(connection, record) -> None:
    checkpoint = SimCheckpoint.from_jsonable(record)
    world = checkpoint.thaw()
    world.run()
    result = world.result()
    connection.send((result.execution_time_ns, result.stats))
    connection.close()


class TestCrossProcessRestore:
    def test_checkpoint_resumes_in_another_process(self):
        straight = _straight_result()
        world = _world()
        world.run(stop_after_events=900)
        record = world.snapshot().to_jsonable()
        context = _fork_context() or multiprocessing.get_context()
        parent, child = context.Pipe(duplex=False)
        process = context.Process(target=_resume_in_child, args=(child, record))
        process.start()
        child.close()
        execution_time_ns, stats = parent.recv()
        process.join(timeout=60)
        assert process.exitcode == 0
        assert execution_time_ns == straight.execution_time_ns
        assert stats == straight.stats
