"""Multiprogrammed mixes: heterogeneous cores sharing a protected memory."""

import pytest

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.errors import SimulationError
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark, run_mix, run_traces
from repro.cpu.generator import make_trace

REQUESTS = 500


class TestRunMix:
    def test_mix_completes(self):
        result = run_mix(
            [SPEC_PROFILES["mcf"], SPEC_PROFILES["astar"]],
            ProtectionLevel.OBFUSMEM_AUTH,
            num_requests=REQUESTS,
        )
        assert result.num_requests == 2 * REQUESTS
        assert result.execution_time_ns > 0

    def test_mix_reproducible(self):
        profiles = [SPEC_PROFILES["bwaves"], SPEC_PROFILES["xalan"]]
        a = run_mix(profiles, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS)
        b = run_mix(profiles, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS)
        assert a.execution_time_ns == b.execution_time_ns

    def test_heavy_partner_slows_light_workload(self):
        """Interference: astar finishes later when co-running with mcf."""
        alone = run_benchmark(
            SPEC_PROFILES["astar"], ProtectionLevel.UNPROTECTED, num_requests=REQUESTS
        )
        mixed = run_mix(
            [SPEC_PROFILES["astar"], SPEC_PROFILES["mcf"]],
            ProtectionLevel.UNPROTECTED,
            num_requests=REQUESTS,
        )
        # The mix's finish time is dominated by the heavier workload.
        assert mixed.execution_time_ns > alone.execution_time_ns

    def test_mix_protection_ordering_holds(self):
        profiles = [SPEC_PROFILES["milc"], SPEC_PROFILES["libquantum"]]
        base = run_mix(profiles, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS)
        obfus = run_mix(profiles, ProtectionLevel.OBFUSMEM_AUTH, num_requests=REQUESTS)
        oram = run_mix(profiles, ProtectionLevel.ORAM, num_requests=REQUESTS)
        assert base.execution_time_ns <= obfus.execution_time_ns
        assert obfus.execution_time_ns * 3 < oram.execution_time_ns

    def test_window_list_validation(self):
        traces = [make_trace(SPEC_PROFILES["astar"], 50)]
        with pytest.raises(SimulationError):
            run_traces(traces, ProtectionLevel.UNPROTECTED, window=[1, 2])

    def test_multichannel_mix(self):
        result = run_mix(
            [SPEC_PROFILES["bwaves"], SPEC_PROFILES["mcf"]],
            ProtectionLevel.OBFUSMEM,
            machine=MachineConfig(channels=2),
            num_requests=REQUESTS,
        )
        # Both channels saw traffic.
        assert result.stats.get("channel0.reads", 0) > 0
        assert result.stats.get("channel1.reads", 0) > 0
