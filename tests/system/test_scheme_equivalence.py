"""Registry-built systems are the systems the enum dispatch used to build.

The multi-layer refactor replaced ``build_system``'s per-level branches
with declarative stage stacks resolved through the scheme registry.  These
tests pin the equivalence the refactor promised: for every protection
level, addressing the scheme by enum member, by registry name, or by the
resolved ``ProtectionScheme`` object yields bit-identical execution times
and statistics — and registry-only hybrids are just as deterministic.
"""

import pytest

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.schemes import get_scheme
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

REQUESTS = 600
SEED = 2017


def _run(scheme, cores=1, channels=1):
    return run_benchmark(
        SPEC_PROFILES["mcf"],
        scheme,
        machine=MachineConfig(channels=channels),
        num_requests=REQUESTS,
        seed=SEED,
        cores=cores,
    )


@pytest.mark.parametrize("level", list(ProtectionLevel), ids=lambda lv: lv.value)
def test_enum_name_and_scheme_designators_agree(level):
    by_enum = _run(level)
    by_name = _run(level.value)
    by_scheme = _run(get_scheme(level.value))
    assert by_name.execution_time_ns == by_enum.execution_time_ns
    assert by_scheme.execution_time_ns == by_enum.execution_time_ns
    assert by_name.stats == by_enum.stats
    assert by_scheme.stats == by_enum.stats


def test_multi_channel_multi_core_equivalence():
    by_enum = _run(ProtectionLevel.OBFUSMEM_AUTH, cores=4, channels=4)
    by_name = _run("obfusmem_auth", cores=4, channels=4)
    assert by_name.execution_time_ns == by_enum.execution_time_ns
    assert by_name.stats == by_enum.stats


ORAM_BACKEND_SCHEMES = ["oram_ring", "pyramid", "palermo"]


@pytest.mark.parametrize("name", ORAM_BACKEND_SCHEMES)
def test_oram_backend_scheme_designators_agree(name):
    """Registry-only ORAM schemes: name vs resolved-object, both lanes."""
    by_name = _run(name)
    by_scheme = _run(get_scheme(name))
    assert by_scheme.execution_time_ns == by_name.execution_time_ns
    assert by_scheme.stats == by_name.stats


@pytest.mark.parametrize("name", ORAM_BACKEND_SCHEMES)
def test_oram_backend_scheme_is_deterministic(name):
    first = _run(name)
    second = _run(name)
    assert first.execution_time_ns == second.execution_time_ns
    assert first.stats == second.stats


def test_oram_backends_differ_from_path_baseline():
    """The backends are real alternatives, not aliases of the baseline."""
    path_time = _run(ProtectionLevel.ORAM).execution_time_ns
    times = {name: _run(name).execution_time_ns for name in ORAM_BACKEND_SCHEMES}
    for name, time_ns in times.items():
        assert time_ns != path_time, name
    # The designs' latency ordering survives end-to-end simulation.
    assert times["palermo"] < times["oram_ring"] < path_time
    assert times["pyramid"] < path_time


def test_hybrid_scheme_is_deterministic():
    first = _run("hide_encrypted")
    second = _run("hide_encrypted")
    assert first.execution_time_ns == second.execution_time_ns
    assert first.stats == second.stats


def test_hybrid_actually_stacks_both_layers():
    stats = _run("hide_encrypted").stats
    assert any(key.startswith("hide.") for key in stats)
    assert any(key.startswith("memenc.") for key in stats)
