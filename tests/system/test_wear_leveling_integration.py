"""Wear leveling under ObfusMem: dummies never advance the gap."""

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

REQUESTS = 1200


def _cell_writes(stats):
    return sum(v for k, v in stats.items() if k.endswith(".array_writes"))


def _gap_moves(stats):
    return sum(v for k, v in stats.items() if k.endswith(".gap_moves"))


class TestWearLevelingWithObfusMem:
    def test_dummies_do_not_move_the_gap(self):
        """Observation 2 extended to §2.2's wear leveler: dropped dummies
        never reach the array, so they cannot trigger gap movement."""
        profile = SPEC_PROFILES["lbm"]
        machine = MachineConfig(wear_leveling=True)
        plain = run_benchmark(
            profile, ProtectionLevel.UNPROTECTED, machine=machine,
            num_requests=REQUESTS,
        )
        obfus = run_benchmark(
            profile, ProtectionLevel.OBFUSMEM, machine=machine,
            num_requests=REQUESTS,
        )
        # ObfusMem's dummy traffic adds no cell writes (hence no extra gap
        # movement) over the workload's own; counter-write traffic from the
        # encryption layer is the only legitimate addition.
        assert _gap_moves(obfus.stats) <= _gap_moves(plain.stats) + 2
        assert _cell_writes(obfus.stats) <= _cell_writes(plain.stats) * 1.2 + 5

    def test_leveling_off_by_default(self):
        profile = SPEC_PROFILES["lbm"]
        result = run_benchmark(
            profile, ProtectionLevel.UNPROTECTED, num_requests=300
        )
        assert _gap_moves(result.stats) == 0

    def test_leveling_overhead_is_bounded(self):
        profile = SPEC_PROFILES["lbm"]
        plain = run_benchmark(
            profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS
        )
        leveled = run_benchmark(
            profile,
            ProtectionLevel.UNPROTECTED,
            machine=MachineConfig(wear_leveling=True, gap_write_interval=16)
            if hasattr(MachineConfig, "gap_write_interval")
            else MachineConfig(wear_leveling=True),
            num_requests=REQUESTS,
        )
        # Start-Gap's write overhead is 1/interval; execution time is
        # essentially unchanged (gap moves are off the critical path here).
        assert leveled.execution_time_ns <= plain.execution_time_ns * 1.05
