"""Golden determinism: the rebuilt kernel reproduces the pre-rewrite physics.

``tests/golden/execution_times.json`` holds ``execution_time_ns`` for every
benchmark x protection level (plus 4-channel and 4-channel/4-core grids),
captured on the ordered-dataclass event kernel and polling scheduler before
the hot-path rewrite.  The rewrite (tuple-keyed heap entries, tombstone
cancellation, wake-on-state-change scheduling) must be a pure performance
change: every cell must match bit-for-bit, not approximately.

Any drift here means the event ordering contract — (time, priority,
sequence), FR-FCFS arbitration over identical queue snapshots — was broken
somewhere, even if the aggregate overheads still look plausible.
"""

import json
from pathlib import Path

import pytest

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "execution_times.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

GRIDS = [
    # (grid key, machine kwargs, cores)
    ("execution_time_ns", {}, 1),
    ("execution_time_ns_4ch", {"channels": 4}, 1),
    ("execution_time_ns_4ch_4core", {"channels": 4}, 4),
]


def _cells():
    for key, machine_kwargs, cores in GRIDS:
        for cell, expected in GOLDEN[key].items():
            benchmark, level = cell.rsplit("/", 1)
            yield pytest.param(
                benchmark, level, machine_kwargs, cores, expected, id=f"{key}:{cell}"
            )


@pytest.mark.parametrize(
    "bench_name, level, machine_kwargs, cores, expected", _cells()
)
def test_execution_time_matches_golden(bench_name, level, machine_kwargs, cores, expected):
    result = run_benchmark(
        SPEC_PROFILES[bench_name],
        ProtectionLevel(level),
        machine=MachineConfig(**machine_kwargs),
        num_requests=GOLDEN["num_requests"],
        seed=GOLDEN["seed"],
        cores=cores,
    )
    # Bit-identical, not approximately equal: execution_time_ns is an exact
    # integer picosecond count divided by 1000, so == is well-defined.
    assert result.execution_time_ns == expected


def test_golden_grid_is_complete():
    """The golden file covers the full benchmark x level product."""
    levels = {level.value for level in ProtectionLevel}
    benchmarks = set(SPEC_PROFILES)
    covered = {
        tuple(cell.rsplit("/", 1)) for cell in GOLDEN["execution_time_ns"]
    }
    assert covered == {(b, lv) for b in benchmarks for lv in levels}
