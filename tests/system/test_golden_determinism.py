"""Golden determinism: rebuilt kernel and scheme pipeline keep the physics.

``tests/golden/execution_times.json`` holds ``execution_time_ns`` for every
benchmark x protection level (plus 4-channel and 4-channel/4-core grids),
captured on the ordered-dataclass event kernel and polling scheduler before
the hot-path rewrite; the ``hide`` cells and the registry-only hybrid grid
(``execution_time_ns_registry``, schemes addressed by name) were captured
when the scheme-registry pipeline landed.  Both the kernel rewrite and the
registry refactor must be pure restructurings: every cell must match
bit-for-bit, not approximately.

Any drift here means the event ordering contract — (time, priority,
sequence), FR-FCFS arbitration over identical queue snapshots, label-stable
rng forking — was broken somewhere, even if the aggregate overheads still
look plausible.

The grid is also the oracle for the checkpoint protocol: a second lane runs
every cell paused-and-resumed — snapshot the world at an event budget, thaw
the pickled blob, continue, repeat — and must land on the same golden
number.  Passing both lanes for every scheme means snapshot/restore is
invisible to the physics.
"""

import json
from pathlib import Path

import pytest

from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark
from repro.system.world import SimWorld

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "execution_times.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

GRIDS = [
    # (grid key, machine kwargs, cores)
    ("execution_time_ns", {}, 1),
    ("execution_time_ns_4ch", {"channels": 4}, 1),
    ("execution_time_ns_4ch_4core", {"channels": 4}, 4),
]


def _cells():
    for key, machine_kwargs, cores in GRIDS:
        for cell, expected in GOLDEN[key].items():
            benchmark, level = cell.rsplit("/", 1)
            yield pytest.param(
                benchmark, level, machine_kwargs, cores, expected, id=f"{key}:{cell}"
            )
    # Registry-only schemes (hybrids): addressed by name, no enum member.
    for cell, expected in GOLDEN["execution_time_ns_registry"].items():
        benchmark, scheme = cell.rsplit("/", 1)
        yield pytest.param(
            benchmark, scheme, {}, 1, expected, id=f"registry:{cell}"
        )


@pytest.mark.parametrize(
    "bench_name, level, machine_kwargs, cores, expected", _cells()
)
def test_execution_time_matches_golden(bench_name, level, machine_kwargs, cores, expected):
    # The scheme is passed as its registry *name*: the enum members resolve
    # to the same registrations, and hybrids only have a name.
    result = run_benchmark(
        SPEC_PROFILES[bench_name],
        level,
        machine=MachineConfig(**machine_kwargs),
        num_requests=GOLDEN["num_requests"],
        seed=GOLDEN["seed"],
        cores=cores,
    )
    # Bit-identical, not approximately equal: execution_time_ns is an exact
    # integer picosecond count divided by 1000, so == is well-defined.
    assert result.execution_time_ns == expected


@pytest.mark.parametrize(
    "bench_name, level, machine_kwargs, cores, expected", _cells()
)
def test_snapshot_resume_matches_golden(
    bench_name, level, machine_kwargs, cores, expected
):
    """The checkpoint lane: every cell, paused/frozen/thawed repeatedly.

    Each pause crosses a full pickle round trip (exactly what the
    persistent store and the preemptible pool do), at a budget that doubles
    every hop so the resume points land at varied depths.  At least one hop
    always happens: every cell executes more events than the first budget.
    """
    profile = SPEC_PROFILES[bench_name]
    traces = [
        make_trace(profile, GOLDEN["num_requests"], seed=GOLDEN["seed"] + 1000 * i)
        for i in range(cores)
    ]
    world = SimWorld(
        traces,
        level,
        machine=MachineConfig(**machine_kwargs),
        window=profile.window,
        seed=GOLDEN["seed"],
    )
    budget, hops = 300, 0
    while not world.run(stop_after_events=budget):
        world = world.snapshot().thaw()
        hops += 1
        budget *= 2
    assert hops >= 1
    assert world.result().execution_time_ns == expected


def test_golden_grid_is_complete():
    """The golden file covers the full benchmark x level product."""
    levels = {level.value for level in ProtectionLevel}
    benchmarks = set(SPEC_PROFILES)
    covered = {
        tuple(cell.rsplit("/", 1)) for cell in GOLDEN["execution_time_ns"]
    }
    assert covered == {(b, lv) for b in benchmarks for lv in levels}
