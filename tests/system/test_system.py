"""System composition and end-to-end simulation invariants."""

import pytest

from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry
from repro.system.builder import build_system
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import compare_levels, run_benchmark, run_trace

REQUESTS = 600  # small but statistically meaningful


class TestBuilder:
    @pytest.mark.parametrize("level", list(ProtectionLevel))
    def test_all_levels_build(self, level):
        system = build_system(
            level, MachineConfig(), Engine(), StatRegistry(), DeterministicRng(1)
        )
        assert system.level is level
        assert hasattr(system.port, "issue")

    def test_oram_has_no_memory_system(self):
        system = build_system(
            ProtectionLevel.ORAM, MachineConfig(), Engine(), StatRegistry(),
            DeterministicRng(1),
        )
        assert system.memory is None and system.oram is not None

    def test_obfusmem_wired_between_encryption_and_memory(self):
        system = build_system(
            ProtectionLevel.OBFUSMEM_AUTH,
            MachineConfig(),
            Engine(),
            StatRegistry(),
            DeterministicRng(1),
        )
        assert system.encryption.downstream is system.obfusmem
        assert system.obfusmem.memory is system.memory


class TestSimulator:
    def test_runs_are_reproducible(self):
        profile = SPEC_PROFILES["cactus"]
        a = run_benchmark(profile, ProtectionLevel.OBFUSMEM, num_requests=REQUESTS)
        b = run_benchmark(profile, ProtectionLevel.OBFUSMEM, num_requests=REQUESTS)
        assert a.execution_time_ns == b.execution_time_ns

    def test_protection_ordering(self):
        """ORAM >> ObfusMem+Auth >= ObfusMem >= enc-only >= baseline."""
        results = compare_levels(
            SPEC_PROFILES["milc"], list(ProtectionLevel), num_requests=REQUESTS
        )
        times = {level: r.execution_time_ns for level, r in results.items()}
        base = times[ProtectionLevel.UNPROTECTED]
        assert times[ProtectionLevel.ORAM] > 5 * base
        assert times[ProtectionLevel.OBFUSMEM_AUTH] >= times[ProtectionLevel.OBFUSMEM]
        assert times[ProtectionLevel.OBFUSMEM] >= times[ProtectionLevel.ENCRYPTION_ONLY]
        assert times[ProtectionLevel.ENCRYPTION_ONLY] >= base
        # ObfusMem stays within 2x of baseline: an order of magnitude
        # cheaper than ORAM (the paper's headline claim).
        assert times[ProtectionLevel.OBFUSMEM_AUTH] < 2 * base

    def test_same_trace_across_levels(self):
        profile = SPEC_PROFILES["lbm"]
        results = compare_levels(
            profile,
            [ProtectionLevel.UNPROTECTED, ProtectionLevel.ORAM],
            num_requests=REQUESTS,
        )
        assert (
            results[ProtectionLevel.UNPROTECTED].num_requests
            == results[ProtectionLevel.ORAM].num_requests
        )

    def test_overhead_pct(self):
        profile = SPEC_PROFILES["lbm"]
        results = compare_levels(
            profile,
            [ProtectionLevel.UNPROTECTED, ProtectionLevel.ORAM],
            num_requests=REQUESTS,
        )
        baseline = results[ProtectionLevel.UNPROTECTED]
        assert results[ProtectionLevel.ORAM].overhead_pct(baseline) > 0
        assert baseline.overhead_pct(baseline) == pytest.approx(0.0)

    def test_multicore_runs_slower_than_single(self):
        profile = SPEC_PROFILES["milc"]
        single = run_benchmark(
            profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS
        )
        quad = run_benchmark(
            profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS, cores=4
        )
        assert quad.num_requests == 4 * single.num_requests
        assert quad.execution_time_ns > single.execution_time_ns

    def test_more_channels_help_heavy_workloads(self):
        profile = SPEC_PROFILES["bwaves"]
        one = run_benchmark(
            profile,
            ProtectionLevel.UNPROTECTED,
            machine=MachineConfig(channels=1),
            num_requests=REQUESTS,
            cores=4,
        )
        four = run_benchmark(
            profile,
            ProtectionLevel.UNPROTECTED,
            machine=MachineConfig(channels=4),
            num_requests=REQUESTS,
            cores=4,
        )
        assert four.execution_time_ns < one.execution_time_ns

    def test_run_trace_with_explicit_trace(self):
        profile = SPEC_PROFILES["astar"]
        trace = make_trace(profile, 100)
        result = run_trace(trace, ProtectionLevel.UNPROTECTED, window=profile.window)
        assert result.num_requests == 100
        assert result.average_gap_ns > 0

    def test_ipc_reported(self):
        profile = SPEC_PROFILES["astar"]
        result = run_benchmark(profile, ProtectionLevel.UNPROTECTED, num_requests=200)
        assert result.ipc(2.0) == pytest.approx(profile.ipc, rel=0.35)


class TestObfusMemTrafficInvariants:
    def test_wire_reads_equal_wire_writes(self):
        """Type obfuscation: command traffic is balanced read/write."""
        result = run_benchmark(
            SPEC_PROFILES["cactus"], ProtectionLevel.OBFUSMEM, num_requests=REQUESTS
        )
        stats = result.stats
        wire_reads = stats.get("channel0.reads", 0) + stats.get("channel0.dummy_reads", 0)
        wire_writes = stats.get("channel0.writes", 0) + stats.get(
            "channel0.dummy_writes", 0
        )
        assert wire_reads == pytest.approx(wire_writes, rel=0.1)

    def test_dummies_never_write_cells(self):
        result = run_benchmark(
            SPEC_PROFILES["cactus"], ProtectionLevel.OBFUSMEM, num_requests=REQUESTS
        )
        dropped = result.stats.get("channel0.dummy_writes_dropped", 0)
        assert dropped > 0
