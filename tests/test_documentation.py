"""Documentation hygiene: every public item carries a docstring.

The deliverable promises doc comments on every public item; this meta-test
keeps that true as the library evolves.  It also pins the operator's
manual (``docs/serving.md``): the file must exist, be linked from the
README, and document every key the live ``/metrics`` endpoint actually
emits — so the manual cannot silently drift from the service.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
SERVING_MANUAL = REPO_ROOT / "docs" / "serving.md"


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


EXPERIMENT_MODULES = [name for name in MODULES if name.startswith("repro.experiments")]


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_experiments_properties_and_exports_documented(module_name):
    """Every public symbol in repro.experiments carries a docstring.

    Stricter than the repo-wide check: properties of public classes count
    as public symbols, and every ``__all__`` re-export must resolve to a
    documented object.
    """
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        for member_name, member in vars(obj).items():
            if member_name.startswith("_") or not isinstance(member, property):
                continue
            getter = member.fget
            if not (getter and getter.__doc__ and getter.__doc__.strip()):
                undocumented.append(f"{name}.{member_name}")
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name, None)
        assert obj is not None, f"{module_name}.__all__ names missing symbol {name}"
        doc = inspect.getdoc(obj)
        if not (doc and doc.strip()):
            undocumented.append(f"__all__:{name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


class TestServingManual:
    """The operator's manual exists, is reachable, and matches the code."""

    def test_manual_exists(self):
        assert SERVING_MANUAL.is_file(), "docs/serving.md is missing"
        assert len(SERVING_MANUAL.read_text()) > 2000

    def test_manual_is_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/serving.md" in readme

    def test_manual_documents_every_metrics_key(self):
        """Each key ``/metrics`` emits has a row in the manual's key table.

        An unstarted service produces the full metrics shape (the fleet
        gauges read zero), so this needs no worker processes.
        """
        from repro.serve.service import ServiceConfig, SimulationService

        service = SimulationService(ServiceConfig(workers=1, cache_dir=None))
        emitted = set(service.metrics())
        manual = SERVING_MANUAL.read_text()
        documented = set(re.findall(r"^\| `(\w+)` \|", manual, flags=re.MULTILINE))
        missing = sorted(emitted - documented)
        assert not missing, f"docs/serving.md metrics table lacks: {missing}"

    def test_manual_documents_every_serve_counter(self):
        """Every ``serve.*`` counter the service can tick is in the manual."""
        from repro.serve import service as service_module

        source = inspect.getsource(service_module)
        counted = {
            f"serve.{name}"
            for name in re.findall(r"""\.add\(\s*['"]([a-z_]+)['"]""", source)
        } | {
            f"serve.hits_{suffix}"
            for suffix in ("memory", "disk", "coalesced")
        } | {"serve.timeouts", "serve.cancelled", "serve.failed"}
        manual = SERVING_MANUAL.read_text()
        missing = sorted(
            counter for counter in counted if f"`{counter}`" not in manual
        )
        assert not missing, f"docs/serving.md counter table lacks: {missing}"

    def test_manual_covers_every_http_route_and_status(self):
        """The endpoints and statuses the front end serves all appear."""
        manual = SERVING_MANUAL.read_text()
        for route in (
            "GET /healthz",
            "GET /metrics",
            "GET /schemes",
            "GET /attacks",
            "GET /jobs",
            "POST /jobs",
            "GET /jobs/<id>",
            "GET /jobs/<id>/events",
            "DELETE /jobs/<id>",
        ):
            assert route in manual, f"docs/serving.md lacks {route}"
        for status in ("202", "400", "404", "405", "409", "429", "503"):
            assert status in manual, f"docs/serving.md never mentions {status}"
        assert "Retry-After" in manual
