"""Documentation hygiene: every public item carries a docstring.

The deliverable promises doc comments on every public item; this meta-test
keeps that true as the library evolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


EXPERIMENT_MODULES = [name for name in MODULES if name.startswith("repro.experiments")]


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_experiments_properties_and_exports_documented(module_name):
    """Every public symbol in repro.experiments carries a docstring.

    Stricter than the repo-wide check: properties of public classes count
    as public symbols, and every ``__all__`` re-export must resolve to a
    documented object.
    """
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        for member_name, member in vars(obj).items():
            if member_name.startswith("_") or not isinstance(member, property):
                continue
            getter = member.fget
            if not (getter and getter.__doc__ and getter.__doc__.strip()):
                undocumented.append(f"{name}.{member_name}")
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name, None)
        assert obj is not None, f"{module_name}.__all__ names missing symbol {name}"
        doc = inspect.getdoc(obj)
        if not (doc and doc.strip()):
            undocumented.append(f"__all__:{name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"
