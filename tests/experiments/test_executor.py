"""The experiment execution layer: persistent cache, parallel runner, manifests.

Covers the acceptance criteria of the executor work: cross-process cache
hits (regenerating Table 1 twice in separate processes performs zero
simulations the second time), parallel/serial result identity, cache
invalidation on schema bumps, and corruption tolerance.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.experiments import runner
from repro.experiments.executor import (
    CACHE_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
    JobRecord,
    JobSpec,
    ParallelRunner,
    ResultCache,
    RunManifest,
    drain_sweep_warnings,
    result_from_jsonable,
    result_to_jsonable,
    sweep_specs,
)
from repro.errors import ConfigurationError
from repro.system.config import MachineConfig, ProtectionLevel

FAST = dict(num_requests=300, seed=7)
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spec(benchmark="astar", level=ProtectionLevel.UNPROTECTED, **overrides):
    params = dict(FAST)
    params.update(overrides)
    return JobSpec(benchmark, level, **params)


class TestJobSpec:
    def test_equal_configs_share_a_digest(self):
        assert hash(MachineConfig()) == hash(MachineConfig())
        assert _spec(machine=MachineConfig()).digest() == _spec(
            machine=MachineConfig()
        ).digest()

    def test_differing_configs_get_distinct_digests(self):
        base = _spec(machine=MachineConfig())
        assert base.digest() != _spec(machine=MachineConfig(channels=2)).digest()
        assert base.digest() != _spec(seed=8).digest()
        assert base.digest() != _spec(level=ProtectionLevel.OBFUSMEM).digest()

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("quake", ProtectionLevel.UNPROTECTED)

    def test_sweep_specs_grid_order(self):
        levels = [ProtectionLevel.UNPROTECTED, ProtectionLevel.ORAM]
        specs = sweep_specs(["astar", "mcf"], levels, num_requests=100)
        assert [(s.benchmark, s.level) for s in specs] == [
            ("astar", ProtectionLevel.UNPROTECTED),
            ("astar", ProtectionLevel.ORAM),
            ("mcf", ProtectionLevel.UNPROTECTED),
            ("mcf", ProtectionLevel.ORAM),
        ]


class TestResultCache:
    def test_roundtrip_is_exact(self, tmp_path):
        spec = _spec()
        result = spec.execute()
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        loaded = cache.get(spec)
        assert loaded == result  # dataclass equality covers stats dict
        assert result_from_jsonable(result_to_jsonable(result)) == result

    def test_miss_on_empty_cache(self, tmp_path):
        assert ResultCache(tmp_path).get(_spec()) is None

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        spec = _spec()
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        assert cache.get(spec) is not None
        monkeypatch.setattr(
            "repro.experiments.executor.CACHE_SCHEMA_VERSION",
            CACHE_SCHEMA_VERSION + 1,
        )
        # The digest now differs, so the old entry is simply never found.
        assert cache.get(spec) is None

    def test_stale_schema_in_payload_rejected(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        path = cache.put(spec, spec.execute())
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_foreign_spec_in_payload_rejected(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        path = cache.put(spec, spec.execute())
        payload = json.loads(path.read_text())
        payload["spec"]["seed"] = 999  # simulated hash collision
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_corrupted_file_reads_as_miss(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        cache.path_for(spec).write_text("{definitely not json")
        assert cache.get(spec) is None

    def test_corrupted_file_falls_back_to_rerun(self, tmp_path):
        runner.clear_cache()
        runner.configure(cache_enabled=True, cache_dir=tmp_path)
        first = runner.cached_run("astar", ProtectionLevel.UNPROTECTED, **FAST)
        cache = ResultCache(tmp_path)
        cache.path_for(_spec()).write_text("garbage")
        runner.clear_cache()  # force past the in-memory layer (resets counters)
        again = runner.cached_run("astar", ProtectionLevel.UNPROTECTED, **FAST)
        assert again == first
        assert runner.simulations_performed() == 1  # re-ran, did not crash
        # ... and the damaged entry was repaired by the re-run.
        runner.clear_cache()
        runner.cached_run("astar", ProtectionLevel.UNPROTECTED, **FAST)
        assert runner.runtime_stats()["runner.disk_hits"] == 1

    def test_clear_removes_entries(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        assert cache.clear() == 1
        assert cache.get(spec) is None


class TestParallelRunner:
    SPECS = [
        _spec("astar"),
        _spec("sjeng"),
        _spec("astar", ProtectionLevel.OBFUSMEM),
    ]

    def test_parallel_matches_serial_bit_identically(self):
        serial = ParallelRunner(workers=1).run(self.SPECS)
        parallel = ParallelRunner(workers=3).run(self.SPECS)
        assert serial == parallel  # full dataclass equality incl. stats

    def test_results_ordered_like_specs(self):
        results = ParallelRunner(workers=2).run(self.SPECS)
        assert [(r.benchmark, r.level) for r in results] == [
            (s.benchmark, s.level) for s in self.SPECS
        ]

    def test_manifest_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelRunner(workers=2, cache=cache)
        executor.run(self.SPECS, label="first")
        manifest = executor.manifest
        assert manifest.jobs == 3
        assert manifest.cache_misses == 3
        assert all(r.source == "simulated" for r in manifest.records)
        assert all(r.wall_ms > 0 for r in manifest.records)

        rewarmed = ParallelRunner(workers=2, cache=cache)
        rewarmed.run(self.SPECS, label="second")
        assert rewarmed.manifest.cache_hits == 3
        assert {r.source for r in rewarmed.manifest.records} == {"disk"}

        # Same runner again: the in-memory layer answers.
        rewarmed.run(self.SPECS, label="third")
        assert {r.source for r in rewarmed.manifest.records} == {"memory"}

    def test_manifest_json_shape(self, tmp_path):
        executor = ParallelRunner(workers=1)
        executor.run(self.SPECS[:1], label="shape")
        path = executor.manifest.write(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["label"] == "shape"
        assert payload["workers"] == 1
        assert payload["jobs"] == 1
        assert payload["cache_misses"] == 1
        assert payload["stats"]["executor.simulations"] == 1
        record = payload["records"][0]
        assert record["benchmark"] == "astar"
        assert record["source"] == "simulated"


class TestWarmStartProvenance:
    """Checkpoint forks must be auditable from the manifest (not invisible)."""

    def _record(self, digest="d", hits=0, resumed=0, source="simulated"):
        return JobRecord(
            digest=digest,
            benchmark="astar",
            level="unprotected",
            channels=1,
            cores=1,
            num_requests=300,
            seed=7,
            source=source,
            wall_ms=1.5,
            checkpoint_hits=hits,
            resumed_from_events=resumed,
        )

    def test_manifest_aggregates_checkpoint_provenance(self):
        manifest = RunManifest(
            label="warm",
            workers=1,
            records=[
                self._record("a"),
                self._record("b", hits=1, resumed=4000),
                self._record("c", hits=1, resumed=2500),
            ],
            wall_clock_s=0.1,
        )
        assert manifest.checkpoint_hits == 2
        assert manifest.events_resumed == 6500

    def test_provenance_round_trips_through_write_and_load(self, tmp_path):
        manifest = RunManifest(
            label="warm",
            workers=2,
            records=[self._record("a", hits=1, resumed=1234)],
            wall_clock_s=0.2,
            warnings=["axis 'levels': dropped 1 duplicate value(s)"],
        )
        path = manifest.write(tmp_path / "warm.json")
        loaded = RunManifest.load(path)
        assert loaded is not None
        assert loaded.records == manifest.records
        assert loaded.warnings == manifest.warnings
        assert loaded.events_resumed == 1234
        payload = json.loads(path.read_text())
        assert payload["checkpoint_hits"] == 1
        assert payload["events_resumed"] == 1234

    def test_schema_skew_loads_as_none(self, tmp_path):
        manifest = RunManifest("warm", 1, [self._record()], 0.1)
        path = manifest.write(tmp_path / "old.json")
        payload = json.loads(path.read_text())
        payload["schema"] = MANIFEST_SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        assert RunManifest.load(path) is None

    def test_runner_records_actual_warm_starts(self, tmp_path):
        from repro.experiments.checkpoints import CheckpointStore

        store = CheckpointStore(tmp_path)
        seeder = ParallelRunner(
            workers=1,
            checkpoints=store,
            checkpoint_interval_events=100,
            checkpoint_save_milestones=(0.5,),
        )
        seeder.run([_spec(num_requests=300)], label="seed")
        (record,) = seeder.manifest.records
        assert record.checkpoint_hits == 0 and record.resumed_from_events == 0

        forker = ParallelRunner(workers=1, checkpoints=store)
        forker.run([_spec(num_requests=600)], label="fork")
        (record,) = forker.manifest.records
        assert record.checkpoint_hits == 1
        assert record.resumed_from_events > 0
        assert forker.manifest.checkpoint_hits == 1
        assert forker.manifest.events_resumed == record.resumed_from_events


class TestSweepSpecsCanonicalization:
    """Duplicate axis values compile away, loudly."""

    def test_duplicate_benchmarks_and_level_spellings_collapse(self):
        drain_sweep_warnings()  # isolate from earlier queued notes
        specs = sweep_specs(
            ["astar", "astar"],
            [ProtectionLevel.ENCRYPTION_ONLY, "encryption_only"],
            num_requests=100,
        )
        assert len(specs) == 1
        warnings = drain_sweep_warnings()
        assert any("'benchmarks'" in w for w in warnings)
        assert any("'levels'" in w for w in warnings)

    def test_warnings_drain_into_the_next_manifest(self):
        drain_sweep_warnings()
        specs = sweep_specs(["astar"], ["unprotected", "unprotected"], num_requests=100)
        executor = ParallelRunner(workers=1)
        executor.run(specs, label="canon")
        assert any("duplicate value" in w for w in executor.manifest.warnings)
        # Drained: the next run's manifest starts clean.
        executor.run(specs, label="clean")
        assert executor.manifest.warnings == []


class TestCachedRunKeying:
    """Regression: the cache key must be by-value, not by-object."""

    def test_equal_machine_configs_share_one_entry(self):
        runner.clear_cache()
        first = runner.cached_run(
            "astar", ProtectionLevel.UNPROTECTED, MachineConfig(), **FAST
        )
        second = runner.cached_run(
            "astar", ProtectionLevel.UNPROTECTED, MachineConfig(), **FAST
        )
        assert first is second
        assert runner.simulations_performed() == 1

    def test_differing_machine_configs_do_not_collide(self):
        runner.clear_cache()
        one = runner.cached_run(
            "astar", ProtectionLevel.UNPROTECTED, MachineConfig(), **FAST
        )
        two = runner.cached_run(
            "astar", ProtectionLevel.UNPROTECTED, MachineConfig(channels=2), **FAST
        )
        assert one is not two
        assert one.channels == 1 and two.channels == 2
        assert runner.simulations_performed() == 2


SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    from repro.experiments import runner, table1
    table1.run(benchmarks=["astar", "sjeng"], num_requests=300, seed=11)
    print(runner.simulations_performed())
    """
)


class TestCrossProcessCache:
    def _regenerate_table1(self, cache_dir):
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        env.pop("REPRO_NO_CACHE", None)
        proc = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return int(proc.stdout.strip())

    def test_second_process_performs_zero_simulations(self, tmp_path):
        assert self._regenerate_table1(tmp_path) == 2
        assert self._regenerate_table1(tmp_path) == 0
        manifest = json.loads((tmp_path / "manifests" / "table1.json").read_text())
        assert manifest["cache_hits"] == 2
        assert manifest["cache_misses"] == 0
