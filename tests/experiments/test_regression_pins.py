"""Regression pins: deterministic headline numbers stay in their bands.

Every simulation in this repository is deterministic, so the reproduction's
headline quantities can be pinned.  These bands are intentionally wider
than run-to-run noise (there is none) but tight enough that a refactor
which silently shifts the physics — a lost turnaround penalty, a broken
dummy drop, a counter-cache regression — fails loudly here.
"""

import pytest

from repro.experiments import figure4, table3
from repro.experiments.runner import clear_cache

BENCHMARKS = ["bwaves", "mcf", "astar"]
REQUESTS = 1000
SEED = 2017


@pytest.fixture(scope="module")
def results():
    clear_cache()
    t3 = table3.run(benchmarks=BENCHMARKS, num_requests=REQUESTS, seed=SEED)
    f4 = figure4.run(benchmarks=BENCHMARKS, num_requests=REQUESTS, seed=SEED)
    clear_cache()
    return t3, f4


class TestHeadlinePins:
    def test_oram_overhead_band(self, results):
        t3, _ = results
        by_name = {row.benchmark: row for row in t3.rows}
        # Paper: bwaves 1561%, mcf 1133%, astar 31%.
        assert 900 < by_name["bwaves"].oram_overhead_pct < 1600
        assert 600 < by_name["mcf"].oram_overhead_pct < 1300
        assert 20 < by_name["astar"].oram_overhead_pct < 45

    def test_obfusmem_overhead_band(self, results):
        t3, _ = results
        by_name = {row.benchmark: row for row in t3.rows}
        # Paper: bwaves 18.9%, mcf 32.1%, astar 0.1%.
        assert 8 < by_name["bwaves"].obfusmem_auth_overhead_pct < 25
        assert 15 < by_name["mcf"].obfusmem_auth_overhead_pct < 40
        assert by_name["astar"].obfusmem_auth_overhead_pct < 2.5

    def test_speedup_band(self, results):
        t3, _ = results
        by_name = {row.benchmark: row for row in t3.rows}
        assert 8 < by_name["bwaves"].speedup < 16  # paper 14.0x
        assert 5 < by_name["mcf"].speedup < 12  # paper 9.3x
        assert 1.1 < by_name["astar"].speedup < 1.6  # paper 1.3x

    def test_breakdown_monotone_and_bounded(self, results):
        _, f4 = results
        for row in f4.rows:
            assert 0 <= row.encryption_pct <= row.obfusmem_pct + 0.5
            assert row.obfusmem_pct <= row.obfusmem_auth_pct + 0.5
            assert row.obfusmem_auth_pct < 40

    def test_determinism_of_the_pins_themselves(self, results):
        """Re-running the exact configuration reproduces identical values."""
        t3, _ = results
        clear_cache()
        again = table3.run(benchmarks=BENCHMARKS, num_requests=REQUESTS, seed=SEED)
        for first, second in zip(t3.rows, again.rows):
            assert first.oram_overhead_pct == second.oram_overhead_pct
            assert (
                first.obfusmem_auth_overhead_pct == second.obfusmem_auth_overhead_pct
            )
