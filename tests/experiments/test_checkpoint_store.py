"""CheckpointStore and the warm-started executor path."""

import json

import pytest

from repro.errors import CheckpointError
from repro.experiments.checkpoints import (
    KEEP_PER_FAMILY,
    CheckpointStore,
    build_world,
    execute_with_checkpoints,
    world_for_spec,
)
from repro.experiments.executor import JobSpec, ParallelRunner, ResultCache


def spec(n=300, **overrides) -> JobSpec:
    params = dict(benchmark="mcf", level="obfusmem_auth", num_requests=n, seed=7)
    params.update(overrides)
    return JobSpec(**params)


def snapshot_at(job: JobSpec, events: int):
    world = build_world(job)
    world.run(stop_after_events=events)
    return world.snapshot()


class TestPrefixDigest:
    def test_stable_across_num_requests(self):
        assert spec(n=300).prefix_digest() == spec(n=4000).prefix_digest()

    def test_sensitive_to_everything_else(self):
        base = spec().prefix_digest()
        assert spec(seed=8).prefix_digest() != base
        assert spec(level="oram").prefix_digest() != base
        assert spec(benchmark="astar").prefix_digest() != base


class TestStore:
    def test_put_then_deepest_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        store.put(job, snapshot_at(job, 500))
        entry = store.deepest(job)
        assert entry is not None
        assert entry.num_requests == job.num_requests
        assert entry.checkpoint.events_executed >= 500
        world = entry.checkpoint.thaw()
        assert world.events_executed == entry.checkpoint.events_executed

    def test_deepest_prefers_more_progress(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        store.put(job, snapshot_at(job, 300))
        store.put(job, snapshot_at(job, 900))
        entry = store.deepest(job)
        assert entry.checkpoint.events_executed >= 900

    def test_finished_worlds_are_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec(n=100)
        world = build_world(job)
        world.run()
        with pytest.raises(CheckpointError, match="finished"):
            store.put(job, world.snapshot())

    def test_shorter_safe_prefix_seeds_a_longer_spec(self, tmp_path):
        store = CheckpointStore(tmp_path)
        short = spec(n=300)
        checkpoint = snapshot_at(short, 800)
        assert checkpoint.safe_prefix
        store.put(short, checkpoint)
        entry = store.deepest(spec(n=600))
        assert entry is not None
        assert entry.num_requests == 300

    def test_longer_runs_never_seed_shorter_specs(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put(spec(n=600), snapshot_at(spec(n=600), 800))
        assert store.deepest(spec(n=300)) is None

    def test_other_families_are_invisible(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        store.put(job, snapshot_at(job, 500))
        assert store.deepest(spec(seed=8)) is None
        assert store.deepest(spec(level="oram")) is None

    def test_family_is_pruned_to_the_deepest_few(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        depths = [200 * (i + 1) for i in range(KEEP_PER_FAMILY + 2)]
        for events in depths:
            store.put(job, snapshot_at(job, events))
        entries = store.candidates(job)
        assert len(entries) == KEEP_PER_FAMILY
        kept = [entry.checkpoint.events_executed for entry in entries]
        assert kept == sorted(kept, reverse=True)
        assert min(kept) > 200  # the shallowest saves are gone

    def test_damaged_entry_degrades_to_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        path = store.put(job, snapshot_at(job, 500))
        path.write_text("not json at all")
        assert store.deepest(job) is None

    def test_undecodable_payload_falls_back_to_cold(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = spec()
        path = store.put(job, snapshot_at(job, 500))
        record = json.loads(path.read_text())
        record["checkpoint"]["digest"] = "0" * 64  # thaw-time damage
        path.write_text(json.dumps(record))
        world, forked_from = world_for_spec(job, store)
        assert forked_from == 0
        assert not path.exists()  # the poisoned entry was evicted
        world.run()
        assert world.result().stats == execute_with_checkpoints(job, None).result.stats


class TestExecuteWithCheckpoints:
    def test_cold_and_warm_agree_bit_for_bit(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cold = execute_with_checkpoints(spec(), None)
        assert cold.forked_from_events == 0
        seeded = execute_with_checkpoints(spec(), store, interval_events=600)
        assert seeded.checkpoints_saved >= 1
        warm = execute_with_checkpoints(spec(n=600), store, interval_events=600)
        assert warm.forked_from_events > 0
        colder = execute_with_checkpoints(spec(n=600), None)
        assert warm.result.execution_time_ns == colder.result.execution_time_ns
        assert warm.result.stats == colder.result.stats
        assert cold.result.stats == execute_with_checkpoints(spec(), store).result.stats

    def test_warm_run_skips_the_forked_events(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_with_checkpoints(spec(), store, interval_events=600)
        warm = execute_with_checkpoints(spec(n=600), store, interval_events=600)
        cold = execute_with_checkpoints(spec(n=600), None)
        assert warm.events_executed < cold.events_executed


class TestRunnerIntegration:
    def test_sweep_through_the_runner_matches_cold_results(self, tmp_path):
        sweep = [spec(n=n) for n in (200, 400, 600)]
        cold = ParallelRunner(workers=1).run(sweep)
        store = CheckpointStore(tmp_path / "ckpt")
        runner = ParallelRunner(
            workers=1,
            cache=ResultCache(tmp_path / "results"),
            checkpoints=store,
            checkpoint_interval_events=500,
        )
        warm = runner.run(sweep)
        for a, b in zip(cold, warm):
            assert a.execution_time_ns == b.execution_time_ns
            assert a.stats == b.stats
        # The sweep left reusable snapshots behind for future longer runs.
        assert store.deepest(spec(n=800)) is not None
