"""Streaming Pareto aggregation: anchors, dominance, digests.

Results are fed synthetically (hand-built :class:`RunResult`\\ s) so every
coordinate is controlled: leakage through ``measured_leakage`` overrides,
energy through explicit ``*.energy_pj`` counters, overhead through chosen
execution times.  A separate test pins the trait-derived leakage surface
with stub attackers.
"""

import pytest

from repro.experiments.executor import JobSpec
from repro.experiments.pareto import (
    FrontierPoint,
    ParetoAggregator,
    ParetoReport,
)
from repro.system.simulator import RunResult

SEED = 13
LEAKAGE = {
    "encryption_only": 0.8,
    "obfusmem_auth": 0.1,
    "oram": 0.0,
}


def spec(level: str, num_requests: int = 200) -> JobSpec:
    return JobSpec("astar", level, num_requests=num_requests, seed=SEED)


def result(
    level: str,
    execution_time_ns: float,
    energy_pj: float = 1000.0,
    num_requests: int = 200,
) -> RunResult:
    return RunResult(
        benchmark="astar",
        level=level,
        channels=1,
        execution_time_ns=execution_time_ns,
        num_requests=num_requests,
        instructions=num_requests * 1000.0,
        stats={"pcm.energy_pj": energy_pj},
    )


def aggregator() -> ParetoAggregator:
    return ParetoAggregator(attackers=(), measured_leakage=LEAKAGE)


class TestAnchoring:
    def test_points_wait_until_their_baseline_lands(self):
        agg = aggregator()
        agg.add(spec("encryption_only"), result("encryption_only", 1500.0))
        assert agg.pending == 1 and agg.points() == []
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        assert agg.pending == 0
        (point,) = agg.points()
        assert point.overhead_pct == pytest.approx(50.0)
        assert point.leakage == pytest.approx(0.8)
        assert point.energy_pj_per_access == pytest.approx(1000.0 / 200)

    def test_fold_order_does_not_change_the_aggregate(self):
        pairs = [
            (spec("unprotected"), result("unprotected", 1000.0)),
            (spec("encryption_only"), result("encryption_only", 1500.0)),
            (spec("obfusmem_auth"), result("obfusmem_auth", 1800.0)),
        ]
        forward, backward = aggregator(), aggregator()
        for job, res in pairs:
            forward.add(job, res)
        for job, res in reversed(pairs):
            backward.add(job, res)
        assert forward.aggregate_digest() == backward.aggregate_digest()
        assert len(forward.points()) == len(backward.points()) == 2

    def test_anchors_are_per_configuration(self):
        agg = aggregator()
        agg.add(spec("unprotected", 200), result("unprotected", 1000.0))
        # A different request count is a different configuration: no anchor.
        agg.add(
            spec("encryption_only", 400),
            result("encryption_only", 1500.0, num_requests=400),
        )
        assert agg.pending == 1


class TestDominance:
    def point(self, scheme, overhead, leakage, energy):
        return FrontierPoint(
            scheme=scheme,
            benchmark="astar",
            channels=1,
            num_requests=200,
            seed=SEED,
            overhead_pct=overhead,
            leakage=leakage,
            energy_pj_per_access=energy,
            execution_time_ns=1000.0,
            cores=1,
            digest=scheme,
        )

    def test_dominates_needs_no_worse_everywhere_and_better_somewhere(self):
        cheap = self.point("a", 10.0, 0.5, 5.0)
        costly = self.point("b", 20.0, 0.5, 5.0)
        tradeoff = self.point("c", 5.0, 0.9, 5.0)
        assert cheap.dominates(costly)
        assert not costly.dominates(cheap)
        assert not cheap.dominates(tradeoff)  # better leakage, worse overhead
        assert not cheap.dominates(cheap)  # a point never dominates itself

    def test_frontier_keeps_only_non_dominated_points(self):
        agg = aggregator()
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        # Three points spanning the trade: encryption_only is cheap but
        # leaky, obfusmem_auth costs more for near-tightness, oram is
        # hugely expensive but watertight — none dominates another.
        agg.add(spec("encryption_only"), result("encryption_only", 1200.0))
        agg.add(spec("obfusmem_auth"), result("obfusmem_auth", 1500.0))
        agg.add(spec("oram"), result("oram", 9000.0, energy_pj=9000.0))
        frontier = agg.frontier()
        for mine in frontier:
            assert not any(other.dominates(mine) for other in frontier)
        # oram survives on its 0.0 leakage despite 800% overhead.
        assert {p.scheme for p in frontier} == {
            "encryption_only",
            "obfusmem_auth",
            "oram",
        }

    def test_dominated_points_are_pruned_on_insert(self):
        agg = ParetoAggregator(
            attackers=(),
            measured_leakage={"encryption_only": 0.8, "obfusmem_auth": 0.8},
        )
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        agg.add(spec("encryption_only"), result("encryption_only", 1500.0))
        assert len(agg.frontier()) == 1
        # Same leakage, lower overhead and energy: evicts the incumbent.
        agg.add(
            spec("obfusmem_auth"), result("obfusmem_auth", 1200.0, energy_pj=500.0)
        )
        assert [p.scheme for p in agg.frontier()] == ["obfusmem_auth"]
        # ... but the cloud still remembers every materialized point.
        assert len(agg.points()) == 2


class TestLeakageSources:
    def test_trait_surface_is_used_without_an_override(self):
        class Doomsayer:
            name = "doomsayer"

            def expects_leak(self, expected) -> bool:
                return True

        class Optimist:
            name = "optimist"

            def expects_leak(self, expected) -> bool:
                return False

        agg = ParetoAggregator(attackers=(Doomsayer(), Optimist()))
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        agg.add(spec("encryption_only"), result("encryption_only", 1500.0))
        (point,) = agg.points()
        assert point.leakage == pytest.approx(0.5)  # 1 of 2 attackers

    def test_measured_leakage_overrides_the_surface(self):
        agg = ParetoAggregator(
            attackers=(), measured_leakage={"encryption_only": 0.25}
        )
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        agg.add(spec("encryption_only"), result("encryption_only", 1500.0))
        (point,) = agg.points()
        assert point.leakage == pytest.approx(0.25)


class TestReport:
    def test_report_freezes_the_aggregator_state(self):
        agg = aggregator()
        agg.add(spec("unprotected"), result("unprotected", 1000.0))
        agg.add(spec("encryption_only"), result("encryption_only", 1500.0))
        agg.add(spec("obfusmem_auth", 400), result("obfusmem_auth", 999.0))
        report = ParetoReport.from_aggregator(agg)
        assert report.pending == 1  # the 400-request point has no anchor
        assert len(report.points) == 1
        assert report.frontier == agg.frontier()
        assert report.digest == agg.aggregate_digest()
