"""Multi-process cache safety: shared byte-budgeted stores under fire.

The worker pool points every worker process at one cache directory, so
two guarantees must hold across processes, not just threads:

* **no torn entries** — write-then-rename means a reader (or a raw
  ``json.loads``) only ever sees whole files, even while another process
  is writing and evicting the same store;
* **no duelling evictors** — the single-evictor ``flock`` lease means at
  most one process walks/unlinks entries at a time, so concurrent
  byte-budget enforcement never double-evicts or crashes.

The hammer test forks two children (one result lane, one trace lane)
against a shared tightly-budgeted directory; the checkpoint race forks
two lanes of one snapshot *family* so every ``put``'s family pruning
unlinks entries the other lane is writing; the lease tests pin the
flock protocol directly with a second process holding the lease.
"""

import json
import multiprocessing

import pytest

from repro.experiments.checkpoints import (
    KEEP_PER_FAMILY,
    CheckpointStore,
    world_for_spec,
)
from repro.experiments.executor import (
    CACHE_SCHEMA_VERSION,
    JobSpec,
    JsonFileCache,
    ResultCache,
    RunResult,
    _fork_context,
)
from repro.experiments.trace_cache import (
    TRACE_SCHEMA_VERSION,
    SyntheticTraceSpec,
    TraceCache,
)
from repro.system.config import ProtectionLevel

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


ROUNDS = 40
#: Distinct digests each lane cycles through (small, so puts overwrite
#: and evictions constantly land on entries the other lane still reads).
SEEDS_PER_LANE = 6


def result_spec(seed: int) -> JobSpec:
    """A tiny distinct-digest job spec per seed."""
    return JobSpec(
        benchmark="astar",
        level=ProtectionLevel.UNPROTECTED,
        num_requests=50,
        seed=seed,
    )


def trace_spec(seed: int) -> SyntheticTraceSpec:
    """A tiny distinct-digest trace spec per seed."""
    return SyntheticTraceSpec("astar", 40, seed)


def _hammer_results(directory, budget, rounds):
    """Child lane: put/get result entries against the shared store."""
    cache = ResultCache(directory, max_bytes=budget)
    template = result_spec(0).execute()  # one simulation, reused per put
    for i in range(rounds):
        cache.put(result_spec(i % SEEDS_PER_LANE), template)
        got = cache.get(result_spec((i + 3) % SEEDS_PER_LANE))
        assert got is None or isinstance(got, RunResult)
    _assert_no_torn_entries(directory)


def _hammer_traces(directory, budget, rounds):
    """Child lane: put/get trace entries against the shared store."""
    cache = TraceCache(directory, max_bytes=budget)
    template = trace_spec(0).build()  # one generation, reused per put
    for i in range(rounds):
        cache.put(trace_spec(i % SEEDS_PER_LANE), template)
        got = cache.get(trace_spec((i + 3) % SEEDS_PER_LANE))
        assert got is None or got.to_jsonable() == template.to_jsonable()
    _assert_no_torn_entries(directory)


def _assert_no_torn_entries(directory):
    """Every readable ``*.json`` entry must be whole (rename is atomic)."""
    for path in directory.glob("*.json"):
        try:
            text = path.read_text()
        except OSError:  # raced with an eviction: gone, not torn
            continue
        json.loads(text)


def checkpoint_spec(num_requests: int) -> JobSpec:
    """One family member: same prefix for every ``num_requests`` value."""
    return JobSpec(
        benchmark="astar",
        level=ProtectionLevel.UNPROTECTED,
        num_requests=num_requests,
        seed=11,
    )


def _genuine_snapshots(spec, limit=6):
    """A deepening sequence of real unfinished snapshots of ``spec``."""
    world, _ = world_for_spec(spec, None)
    snapshots = []
    finished = False
    while not finished and len(snapshots) < limit:
        finished = world.run(stop_after_events=40)
        if not finished:
            snapshots.append(world.snapshot())
    assert len(snapshots) >= 2, "spec too small to snapshot mid-run"
    return snapshots


def _hammer_checkpoints(directory, num_requests, rounds):
    """Child lane: re-put a family's snapshots while siblings get pruned.

    Every ``put`` ends in ``_prune_family``, so two lanes in one family
    continuously unlink entries the other lane just wrote or is about to
    re-write; reads through ``deepest``/``candidates`` must only ever see
    whole entries or misses.
    """
    spec = checkpoint_spec(num_requests)
    snapshots = _genuine_snapshots(spec)
    store = CheckpointStore(directory)
    for i in range(rounds):
        store.put(spec, snapshots[i % len(snapshots)])
        found = store.deepest(spec)
        assert found is None or found.checkpoint.events_executed > 0
        for entry in store.candidates(spec):  # both lanes' lengths show up
            assert entry.checkpoint.events_executed > 0
    _assert_no_torn_entries(directory)


def _hold_lease(directory, held, release):
    """Child: grab the evictor lease, report, and hold until released."""
    handle = open(directory / JsonFileCache.EVICTOR_LEASE_NAME, "a+")
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    held.set()
    release.wait(timeout=30)
    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    handle.close()


def _context() -> multiprocessing.context.BaseContext:
    context = _fork_context()
    if context is None:  # pragma: no cover - platform-dependent
        pytest.skip("platform has no fork start method")
    return context


class TestConcurrentHammer:
    def test_two_processes_never_corrupt_a_shared_budgeted_store(self, tmp_path):
        context = _context()
        # A budget around four entries keeps eviction constantly active
        # while both lanes write: size one entry of each kind first.
        probe_results = ResultCache(tmp_path)
        probe_results.put(result_spec(0), result_spec(0).execute())
        probe_traces = TraceCache(tmp_path)
        probe_traces.put(trace_spec(0), trace_spec(0).build())
        budget = 2 * probe_results.size_bytes()

        lanes = [
            context.Process(
                target=_hammer_results, args=(tmp_path, budget, ROUNDS)
            ),
            context.Process(
                target=_hammer_traces, args=(tmp_path, budget, ROUNDS)
            ),
        ]
        for lane in lanes:
            lane.start()
        for lane in lanes:
            lane.join(timeout=120)
        # A non-zero exit means a lane saw a torn entry or a crashed
        # eviction; a None exitcode means it hung.
        assert [lane.exitcode for lane in lanes] == [0, 0]

        # No scratch files leaked: every write-then-rename completed.
        assert list(tmp_path.glob("*.tmp")) == []
        # Every surviving entry is whole and carries its schema stamp.
        survivors = list(tmp_path.glob("*.json"))
        assert survivors, "the store should not have been evicted to empty"
        for path in survivors:
            payload = json.loads(path.read_text())
            if path.name.startswith("trace-"):
                assert payload["schema"] == TRACE_SCHEMA_VERSION
            else:
                assert payload["schema"] == CACHE_SCHEMA_VERSION
        # Once the dust settles one evict enforces the budget exactly.
        cache = JsonFileCache(tmp_path, max_bytes=budget)
        cache.evict()
        assert cache.size_bytes() <= budget

    def test_entries_survive_with_readable_payloads_after_the_storm(self, tmp_path):
        context = _context()
        lane = context.Process(target=_hammer_results, args=(tmp_path, None, 10))
        lane.start()
        lane.join(timeout=120)
        assert lane.exitcode == 0
        cache = ResultCache(tmp_path)
        # Unbudgeted run: all six digests must still load as valid results.
        for seed in range(SEEDS_PER_LANE):
            assert isinstance(cache.get(result_spec(seed)), RunResult)


class TestPruneVsPutRace:
    def test_family_pruning_races_concurrent_puts_safely(self, tmp_path):
        """Two processes put-and-prune one checkpoint family at once.

        The lanes share a prefix digest but target different request
        counts, so each ``put``'s :meth:`CheckpointStore._prune_family`
        walks (and unlinks within) a family the other lane is actively
        writing.  Nothing may tear, pruning must never cross into the
        other length's entries, and each length must settle at no more
        than ``KEEP_PER_FAMILY`` snapshots.
        """
        context = _context()
        lengths = (60, 90)
        lanes = [
            context.Process(
                target=_hammer_checkpoints, args=(tmp_path, length, ROUNDS)
            )
            for length in lengths
        ]
        for lane in lanes:
            lane.start()
        for lane in lanes:
            lane.join(timeout=120)
        assert [lane.exitcode for lane in lanes] == [0, 0]

        assert list(tmp_path.glob("*.tmp")) == []
        for length in lengths:
            spec = checkpoint_spec(length)
            prefix32 = spec.prefix_digest()[:32]
            survivors = list(
                tmp_path.glob(f"ckpt-{prefix32}-{length:09d}-*.json")
            )
            assert 0 < len(survivors) <= KEEP_PER_FAMILY
            # The deepest surviving snapshot still thaws into a live world.
            found = CheckpointStore(tmp_path).deepest(spec)
            assert found is not None
            world = found.checkpoint.thaw()
            assert world.events_executed == found.checkpoint.events_executed


@pytest.mark.skipif(fcntl is None, reason="needs POSIX file locks")
class TestEvictorLease:
    def test_evict_yields_while_another_process_holds_the_lease(self, tmp_path):
        context = _context()
        cache = ResultCache(tmp_path, max_bytes=0)
        template = result_spec(0).execute()
        # Fill without triggering eviction (write_json would evict at
        # budget 0), so there is something for the later evict to remove.
        unbudgeted = ResultCache(tmp_path)
        for seed in range(3):
            unbudgeted.put(result_spec(seed), template)
        assert len(list(tmp_path.glob("*.json"))) == 3

        held = context.Event()
        release = context.Event()
        holder = context.Process(target=_hold_lease, args=(tmp_path, held, release))
        holder.start()
        try:
            assert held.wait(timeout=30)
            # The lease is taken: this process must skip eviction entirely.
            assert cache.evict() == 0
            assert len(list(tmp_path.glob("*.json"))) == 3
        finally:
            release.set()
            holder.join(timeout=30)
        assert holder.exitcode == 0
        # Lease released: the same call now enforces the zero budget.
        assert cache.evict() == 3
        assert list(tmp_path.glob("*.json")) == []

    def test_lease_file_is_not_itself_an_evictable_entry(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        cache.put(result_spec(0), result_spec(0).execute())
        lease = tmp_path / JsonFileCache.EVICTOR_LEASE_NAME
        assert lease.exists()  # taking the lease created the sentinel
        assert cache.evict() == 0  # store already empty; lease not counted
        assert lease.exists()
        assert cache.size_bytes() == 0
