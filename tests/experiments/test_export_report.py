"""CSV export and the Markdown report generator."""

import csv

from repro.experiments import energy, export, figure4, figure5, table1, table3, table4
from repro.experiments.report import generate_report

FAST = dict(num_requests=400, seed=7)
SUBSET = ["bwaves", "astar"]


def _read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestCsvExport:
    def test_table1(self, tmp_path):
        rows = table1.run(benchmarks=SUBSET, **FAST)
        path = export.write_table1(rows, tmp_path / "t1.csv")
        content = _read_csv(path)
        assert content[0][0] == "benchmark"
        assert len(content) == 3
        assert content[1][0] == "bwaves"

    def test_table3(self, tmp_path):
        result = table3.run(benchmarks=SUBSET, **FAST)
        content = _read_csv(export.write_table3(result, tmp_path / "t3.csv"))
        assert len(content) == 3
        assert float(content[1][1]) > 100  # bwaves ORAM overhead

    def test_figure4(self, tmp_path):
        result = figure4.run(benchmarks=SUBSET, **FAST)
        content = _read_csv(export.write_figure4(result, tmp_path / "f4.csv"))
        assert content[0] == [
            "benchmark",
            "encryption_pct",
            "obfusmem_pct",
            "obfusmem_auth_pct",
        ]

    def test_figure5(self, tmp_path):
        result = figure5.run(
            benchmarks=["astar"], channel_counts=(2,), num_requests=300, cores=1
        )
        content = _read_csv(export.write_figure5(result, tmp_path / "f5.csv"))
        assert len(content) == 5  # header + 2 injections x 2 auth modes

    def test_table4(self, tmp_path):
        result = table4.run(benchmark="astar", num_requests=300, seed=7)
        content = _read_csv(export.write_table4(result, tmp_path / "t4.csv"))
        aspects = [row[0] for row in content[1:]]
        assert "type_accuracy" in aspects

    def test_energy(self, tmp_path):
        result = energy.run(benchmark="astar", num_requests=300, seed=7)
        content = _read_csv(export.write_energy(result, tmp_path / "energy.csv"))
        by_name = {row[0]: row for row in content[1:]}
        assert float(by_name["energy_factor"][1]) == 780.0


class TestReport:
    def test_report_contains_all_sections(self):
        report = generate_report(
            num_requests=300, benchmarks=SUBSET, include_figure5=False
        )
        for section in ("Table 1", "Table 3", "Figure 4", "Table 4", "Section 5.2"):
            assert section in report
        assert "Figure 5" not in report

    def test_report_with_figure5(self):
        report = generate_report(
            num_requests=300,
            benchmarks=["astar"],
            include_figure5=True,
            figure5_requests=200,
        )
        assert "Figure 5" in report
