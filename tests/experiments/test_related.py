"""Related-work comparison experiment (§7 positioning, measured)."""

import pytest

from repro.experiments import related


@pytest.fixture(scope="module")
def result():
    return related.run(benchmark="bwaves", num_requests=800, seed=7)


class TestRelatedComparison:
    def test_unprotected_leaks_everything_for_free(self, result):
        row = result.row("unprotected")
        assert row.overhead_pct == pytest.approx(0.0)
        assert row.block_locality > 0.5
        assert row.type_accuracy == 1.0

    def test_hide_is_partial(self, result):
        row = result.row("hide-chunk-permute")
        # Intra-chunk locality hidden...
        assert row.block_locality < 0.3
        # ...but chunk-grain locality and the request type leak.
        assert row.chunk_locality > 0.7
        assert row.type_accuracy == 1.0

    def test_hide_reshuffling_costs_row_locality(self, result):
        """The measured §6.2 argument: schemes that move data pay for it."""
        hide = result.row("hide-chunk-permute")
        obfus = result.row("obfusmem+auth")
        assert hide.overhead_pct > obfus.overhead_pct

    def test_obfusmem_hides_all_dimensions(self, result):
        row = result.row("obfusmem+auth")
        assert row.block_locality < 0.02
        assert row.chunk_locality < 0.1
        assert row.temporal_repeats == 0.0
        assert row.type_accuracy == pytest.approx(0.5, abs=0.05)

    def test_oram_complete_but_costly(self, result):
        oram = result.row("path-oram")
        obfus = result.row("obfusmem+auth")
        assert oram.overhead_pct > 10 * obfus.overhead_pct

    def test_every_oram_backend_reported_as_fully_hidden(self, result):
        """The opaque rows come from the registry's declarative traits."""
        for system in ("path-oram", "ring-oram", "pyramid-oram", "palermo-oram"):
            row = result.row(system)
            assert row.block_locality == 0.0
            assert row.chunk_locality == 0.0
            assert row.temporal_repeats == 0.0
            assert row.type_accuracy == 0.5

    def test_oram_designs_span_an_overhead_range(self, result):
        """The backends position differently against ObfusMem on cost."""
        path = result.row("path-oram").overhead_pct
        ring = result.row("ring-oram").overhead_pct
        palermo = result.row("palermo-oram").overhead_pct
        pyramid = result.row("pyramid-oram").overhead_pct
        assert palermo < ring < path
        assert pyramid < path

    def test_formatting(self, result):
        table = related.format_results(result)
        assert "hide-chunk-permute" in table
        assert "obfusmem+auth" in table

    def test_unknown_system_raises(self, result):
        with pytest.raises(KeyError):
            result.row("invisimem")
