"""Cache-maintenance tests: bounded eviction and schema-versioned loads.

Satellites of the serving PR: a long-lived service points one
:class:`~repro.experiments.executor.ResultCache` at a directory forever,
so the store must be boundable (LRU-by-mtime eviction) and every JSON
load — cached results and run manifests alike — must degrade to a miss
on version skew or corruption instead of crashing the sweep.
"""

import json
import os

from repro.experiments.executor import (
    CACHE_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
    JobRecord,
    JobSpec,
    ResultCache,
    RunManifest,
)
from repro.system.config import ProtectionLevel


def spec(seed: int) -> JobSpec:
    """A tiny distinct-digest spec per seed."""
    return JobSpec(
        benchmark="astar",
        level=ProtectionLevel.UNPROTECTED,
        num_requests=50,
        seed=seed,
    )


def fill(cache: ResultCache, seeds) -> dict[int, JobSpec]:
    """Execute and store one entry per seed; returns seed -> spec."""
    specs = {}
    for seed in seeds:
        job = spec(seed)
        cache.put(job, job.execute())
        specs[seed] = job
    return specs


def set_age(cache: ResultCache, job: JobSpec, age_s: float) -> None:
    """Backdate one entry's mtime by ``age_s`` seconds."""
    path = cache.path_for(job)
    stamp = path.stat().st_mtime - age_s
    os.utime(path, (stamp, stamp))


class TestBoundedEviction:
    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, range(4))
        assert cache.evict() == 0
        assert len(list(tmp_path.glob("*.json"))) == 4

    def test_put_evicts_oldest_entries_down_to_budget(self, tmp_path):
        probe = ResultCache(tmp_path)
        specs = fill(probe, range(3))
        entry_bytes = probe.path_for(specs[0]).stat().st_size
        # Budget for roughly two entries: storing a fourth must evict the
        # least-recently-used ones, never the newcomer.
        cache = ResultCache(tmp_path, max_bytes=int(entry_bytes * 2.5))
        for seed, age in ((0, 300.0), (1, 200.0), (2, 100.0)):
            set_age(cache, specs[seed], age)
        newest = spec(3)
        cache.put(newest, newest.execute())
        assert cache.size_bytes() <= cache.max_bytes
        assert cache.get(newest) is not None  # the fresh write survived
        assert cache.get(specs[0]) is None  # oldest went first
        assert cache.get(specs[2]) is not None

    def test_get_refreshes_recency(self, tmp_path):
        probe = ResultCache(tmp_path)
        specs = fill(probe, range(3))
        entry_bytes = probe.path_for(specs[0]).stat().st_size
        cache = ResultCache(tmp_path, max_bytes=int(entry_bytes * 2.5))
        for seed, age in ((0, 300.0), (1, 200.0), (2, 100.0)):
            set_age(cache, specs[seed], age)
        # Touch the oldest entry: the hit must move it off the LRU end.
        assert cache.get(specs[0]) is not None
        newest = spec(4)
        cache.put(newest, newest.execute())
        assert cache.get(specs[0]) is not None  # protected by the hit
        assert cache.get(specs[1]) is None  # now the actual LRU victim

    def test_explicit_evict_with_override_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = fill(cache, range(3))
        for seed, age in ((0, 300.0), (1, 200.0), (2, 100.0)):
            set_age(cache, specs[seed], age)
        assert cache.evict(max_bytes=0) == 3
        assert cache.size_bytes() == 0
        assert cache.evict(max_bytes=0) == 0  # idempotent on empty

    def test_size_bytes_tracks_the_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.size_bytes() == 0
        specs = fill(cache, range(2))
        on_disk = sum(
            cache.path_for(job).stat().st_size for job in specs.values()
        )
        assert cache.size_bytes() == on_disk


class TestCachedResultSchema:
    def test_version_skew_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(1)
        path = cache.put(job, job.execute())
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None
        # A fresh put repairs the entry in place.
        cache.put(job, job.execute())
        assert cache.get(job) is not None

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(2)
        path = cache.put(job, job.execute())
        path.write_text("{not json at all")
        assert cache.get(job) is None
        path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION}))
        assert cache.get(job) is None  # well-formed but missing fields


class TestManifestSchema:
    def manifest(self) -> RunManifest:
        record = JobRecord(
            digest="d" * 16,
            benchmark="astar",
            level="unprotected",
            channels=4,
            cores=4,
            num_requests=50,
            seed=1,
            source="simulated",
            wall_ms=1.5,
        )
        return RunManifest(
            label="test-sweep",
            workers=2,
            records=[record],
            wall_clock_s=0.25,
            stats={"sim.events": 10.0},
        )

    def test_round_trip(self, tmp_path):
        path = self.manifest().write(tmp_path / "manifest.json")
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA_VERSION
        loaded = RunManifest.load(path)
        assert loaded is not None
        assert loaded.label == "test-sweep"
        assert loaded.workers == 2
        assert loaded.wall_clock_s == 0.25
        assert loaded.records == self.manifest().records
        assert loaded.cache_hits == 0 and loaded.cache_misses == 1

    def test_version_skew_returns_none(self, tmp_path):
        path = self.manifest().write(tmp_path / "manifest.json")
        payload = json.loads(path.read_text())
        payload["schema"] = MANIFEST_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert RunManifest.load(path) is None

    def test_corruption_and_absence_return_none(self, tmp_path):
        path = self.manifest().write(tmp_path / "manifest.json")
        path.write_text("]:corrupt:[")
        assert RunManifest.load(path) is None
        path.write_text(json.dumps({"schema": MANIFEST_SCHEMA_VERSION}))
        assert RunManifest.load(path) is None  # fields missing
        assert RunManifest.load(tmp_path / "never-written.json") is None
