"""The scheme×attack leakage matrix: specs, caching, goldens, export."""

import json
import subprocess
import sys

import pytest

from repro.attacks import AttackOutcome, attacker_names
from repro.errors import ConfigurationError
from repro.experiments import matrix, runner
from repro.experiments.export import write_matrix
from repro.experiments.matrix import (
    AttackCache,
    AttackCellSpec,
    MatrixCell,
    MatrixResult,
    format_matrix,
    matrix_specs,
)
from repro.schemes import scheme_names

SMALL = dict(
    schemes=["unprotected", "obfusmem"],
    attacks=["dictionary", "type_recovery"],
    workloads=("bwaves", "mcf"),
)


@pytest.fixture(scope="module")
def small_matrix(tmp_path_factory):
    """One small matrix, run once against an isolated cache directory."""
    cache_dir = tmp_path_factory.mktemp("matrix-cache")
    runner.configure(workers=1, cache_enabled=True, cache_dir=cache_dir)
    runner.clear_cache()
    matrix.clear_memory()
    matrix.capture_workload.cache_clear()
    result = matrix.run(**SMALL)
    yield result, cache_dir
    runner.reset_config()
    runner.clear_cache()
    matrix.clear_memory()
    matrix.capture_workload.cache_clear()


class TestCellSpec:
    def test_digest_is_stable_and_spec_sensitive(self):
        spec = AttackCellSpec(attack="dictionary", level="unprotected")
        assert spec.digest() == AttackCellSpec(
            attack="dictionary", level="unprotected"
        ).digest()
        assert spec.digest() != AttackCellSpec(
            attack="dictionary", level="unprotected", seed=spec.seed + 1
        ).digest()
        assert spec.digest() != AttackCellSpec(
            attack="type_recovery", level="unprotected"
        ).digest()

    def test_validation_fails_fast(self):
        with pytest.raises(ConfigurationError, match="dictionary"):
            AttackCellSpec(attack="dictionnary", level="unprotected")
        with pytest.raises(ConfigurationError):
            AttackCellSpec(attack="dictionary", level="nope")
        with pytest.raises(ConfigurationError, match="workload"):
            AttackCellSpec(attack="dictionary", level="unprotected", workloads=())
        with pytest.raises(ConfigurationError, match="quake"):
            AttackCellSpec(
                attack="dictionary", level="unprotected", workloads=("quake",)
            )
        with pytest.raises(ConfigurationError):
            AttackCellSpec(attack="dictionary", level="unprotected", num_requests=0)

    def test_runner_contract_fields(self):
        spec = AttackCellSpec(attack="dictionary", level="oram")
        assert spec.benchmark == "bwaves+mcf+astar"
        assert spec.cores == 1
        assert spec.machine.channels == spec.channels

    def test_full_grid_covers_both_registries(self):
        specs = matrix_specs()
        assert len(specs) == len(scheme_names()) * len(attacker_names())


class TestSmallMatrix:
    def test_golden_cells(self, small_matrix):
        """The obfusmem-vs-plaintext advantage ordering, end to end."""
        result, _ = small_matrix
        plain_dict = result.cell("unprotected", "dictionary")
        obfus_dict = result.cell("obfusmem", "dictionary")
        assert plain_dict.outcome.advantage == 1.0 and plain_dict.leaked
        assert obfus_dict.outcome.advantage == 0.0 and not obfus_dict.leaked
        plain_type = result.cell("unprotected", "type_recovery")
        obfus_type = result.cell("obfusmem", "type_recovery")
        assert plain_type.outcome.advantage == 1.0
        assert obfus_type.outcome.advantage < 0.15
        assert result.agreement == (4, 4)

    def test_orderings_pass(self, small_matrix):
        result, _ = small_matrix
        checks = result.check_orderings()
        assert checks  # the obfusmem claim is present for this subset
        assert all(passed for _claim, passed in checks)

    def test_manifest_written(self, small_matrix):
        _, cache_dir = small_matrix
        manifest = json.loads((cache_dir / "manifests" / "matrix.json").read_text())
        assert manifest["jobs"] == 4

    def test_rerun_hits_memory(self, small_matrix):
        result, _ = small_matrix
        again = matrix.run(**SMALL)
        assert again.manifest.cache_misses == 0
        assert again.manifest.cache_hits == 4
        assert [c.outcome for c in again.cells] == [c.outcome for c in result.cells]

    def test_disk_cache_survives_memory_clear(self, small_matrix):
        result, cache_dir = small_matrix
        # The hermetic autouse fixture disabled the cache for this test
        # body; point the runner back at the module's populated cache.
        runner.configure(workers=1, cache_enabled=True, cache_dir=cache_dir)
        matrix.clear_memory()
        matrix.capture_workload.cache_clear()
        again = matrix.run(**SMALL)
        assert again.manifest.cache_misses == 0  # all cells from disk
        assert [c.outcome for c in again.cells] == [c.outcome for c in result.cells]

    def test_format_matrix_render(self, small_matrix):
        result, _ = small_matrix
        text = format_matrix(result)
        assert "scheme" in text and "agree" in text
        assert "1.00+" in text  # unprotected leaks
        assert "0.00-" in text  # obfusmem resists
        assert "*" not in text.splitlines()[2]  # no disagreement flags

    def test_csv_export(self, small_matrix, tmp_path):
        result, _ = small_matrix
        path = write_matrix(result, tmp_path / "matrix.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("scheme,attack,advantage")
        assert len(lines) == 1 + len(result.cells)
        assert any(line.startswith("unprotected,dictionary,1.0000") for line in lines)


class TestAttackCache:
    def test_roundtrip_and_damage_degrade_to_miss(self, tmp_path):
        cache = AttackCache(tmp_path)
        spec = AttackCellSpec(attack="dictionary", level="unprotected")
        outcome = AttackOutcome("dictionary", "unprotected", 1.0, 0.0, 1.0, {})
        assert cache.get(spec) is None
        path = cache.put(spec, outcome)
        assert cache.get(spec) == outcome
        payload = json.loads(path.read_text())
        payload["schema"] = "attack-cell-0"
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None  # stale schema
        path.write_text("{not json")
        assert cache.get(spec) is None  # damage


class TestDeterminism:
    def test_cell_outcome_bit_identical_across_processes(self, tmp_path):
        """Same spec digest -> byte-identical AttackOutcome JSON, twice."""
        script = (
            "import json\n"
            "from repro.experiments import runner\n"
            "from repro.experiments.matrix import AttackCellSpec\n"
            "runner.configure(cache_enabled=False)\n"
            "spec = AttackCellSpec(attack='type_recovery', level='unprotected',\n"
            "                      workloads=('bwaves',), num_requests=400, seed=11)\n"
            "print(spec.digest())\n"
            "print(json.dumps(spec.execute().to_jsonable(), sort_keys=True))\n"
        )
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        digest, payload = outputs[0].strip().splitlines()
        assert len(digest) == 64
        assert json.loads(payload)["advantage"] == 1.0


class TestResultAssembly:
    def _cell(self, scheme, attack, advantage, expected, threshold=0.5):
        outcome = AttackOutcome(attack, scheme, advantage, 0.0, advantage, {})
        return MatrixCell(scheme, attack, outcome, expected, threshold)

    def test_verdicts_and_disagreement_flag(self):
        leaky = self._cell("hide", "fingerprint", 0.9, expected=True)
        surprising = self._cell("obfusmem", "fingerprint", 0.9, expected=False)
        assert leaky.leaked and leaky.agrees
        assert surprising.leaked and not surprising.agrees
        result = MatrixResult(("bwaves",), 100, 1, 4, [leaky, surprising])
        assert result.agreement == (1, 2)
        assert "*" in format_matrix(result)

    def test_ordering_check_flags_timing_mismatch(self):
        cells = [
            self._cell("oram_ring", "rebuild_timing", 0.0, expected=True),
        ]
        result = MatrixResult(("bwaves",), 100, 1, 4, cells)
        checks = dict(result.check_orderings())
        assert checks["rebuild-timing flags exactly the bursty ORAM backends"] is False

    def test_cell_lookup_raises_on_absent(self):
        result = MatrixResult(("bwaves",), 100, 1, 4, [])
        with pytest.raises(KeyError):
            result.cell("unprotected", "dictionary")
