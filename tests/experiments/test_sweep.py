"""Declarative sweep specs and the prefix-sharing scheduler.

Covers the three layers of :mod:`repro.experiments.sweep`: spec
validation and the three combination modes, compilation (canonicalized
axes, digest dedup, baseline anchors, manifest warnings), wave planning
under the cost model, and an end-to-end scheduled execution that must be
bit-identical to cold execution while actually warm-starting.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.checkpoints import CheckpointStore
from repro.experiments.executor import JobSpec, ParallelRunner
from repro.experiments.pareto import ParetoAggregator
from repro.experiments.sweep import (
    CostModel,
    SweepAxis,
    SweepSpec,
    plan_sweep,
    run_sweep,
)
from repro.system.config import ProtectionLevel

SEED = 31


def axes(**named) -> tuple[SweepAxis, ...]:
    """Shorthand: keyword name -> values tuple, dots spelled as __."""
    return tuple(
        SweepAxis(name.replace("__", "."), tuple(values))
        for name, values in named.items()
    )


def small_spec(**overrides) -> SweepSpec:
    params = dict(
        axes=axes(
            benchmark=("astar",),
            level=("unprotected", "encryption_only"),
            num_requests=(150, 300),
            seed=(SEED,),
        ),
        baselines=False,
    )
    params.update(overrides)
    return SweepSpec(**params)


class TestSweepAxisValidation:
    def test_unknown_axis_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown axis"):
            SweepAxis("cache_size", (1,))

    def test_unknown_machine_field_rejected(self):
        with pytest.raises(ConfigurationError, match="machine fields"):
            SweepAxis("machine.warp_drive", (1,))

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmarks"):
            SweepAxis("benchmark", ("quake",))

    def test_unknown_level_gets_resolver_hint(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("level", ("obfusmen",))

    def test_integer_axes_need_positive_integers(self):
        for bad in (0, -5, True, "many"):
            with pytest.raises(ConfigurationError):
                SweepAxis("num_requests", (bad,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepAxis("seed", ())


class TestSweepSpecValidation:
    def test_benchmark_and_level_axes_are_required(self):
        with pytest.raises(ConfigurationError, match="'level'"):
            SweepSpec(axes=axes(benchmark=("astar",)))
        with pytest.raises(ConfigurationError, match="'benchmark'"):
            SweepSpec(axes=axes(level=("unprotected",)))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep mode"):
            small_spec(mode="all-pairs")

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate axes"):
            SweepSpec(
                axes=(
                    SweepAxis("benchmark", ("astar",)),
                    SweepAxis("benchmark", ("mcf",)),
                    SweepAxis("level", ("unprotected",)),
                )
            )

    def test_zip_mode_needs_equal_lengths(self):
        with pytest.raises(ConfigurationError, match="equal-length"):
            small_spec(
                mode="zip",
                axes=axes(
                    benchmark=("astar", "mcf"),
                    level=("unprotected",),
                    num_requests=(100, 200, 300),
                ),
            )

    def test_random_mode_needs_samples(self):
        with pytest.raises(ConfigurationError, match="samples"):
            small_spec(mode="random")


class TestWireForm:
    def test_round_trip(self):
        spec = small_spec()
        assert SweepSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_unknown_fields_rejected(self):
        payload = small_spec().to_jsonable()
        payload["grid"] = True
        with pytest.raises(ConfigurationError, match="unknown sweep-spec fields"):
            SweepSpec.from_jsonable(payload)

    def test_schema_mismatch_rejected(self):
        payload = small_spec().to_jsonable()
        payload["schema"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            SweepSpec.from_jsonable(payload)

    def test_scalar_axis_values_broadcast_to_lists(self):
        spec = SweepSpec.from_jsonable(
            {"axes": {"benchmark": "astar", "level": ["unprotected"]}}
        )
        assert spec.axes[0].values == ("astar",)

    def test_load_reads_a_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(small_spec().to_jsonable()))
        assert SweepSpec.load(path) == small_spec()

    def test_load_failures_are_configuration_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            SweepSpec.load(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not JSON"):
            SweepSpec.load(garbled)


class TestCompile:
    def test_grid_mode_takes_the_cartesian_product(self):
        compiled = small_spec().compile()
        assert len(compiled.jobs) == 4  # 1 benchmark x 2 levels x 2 lengths
        assert compiled.requested == 4
        assert compiled.duplicates_dropped == 0
        lengths = {job.num_requests for job in compiled.jobs}
        assert lengths == {150, 300}

    def test_duplicate_axis_values_canonicalized_with_warning(self):
        compiled = small_spec(
            axes=axes(
                benchmark=("astar", "astar"),
                level=("unprotected", "encryption_only"),
            )
        ).compile()
        assert len(compiled.jobs) == 2
        assert any("duplicate value" in w for w in compiled.warnings)

    def test_zip_mode_walks_axes_in_lockstep_and_broadcasts(self):
        compiled = small_spec(
            mode="zip",
            axes=axes(
                benchmark=("astar", "mcf"),
                level=("unprotected", "encryption_only"),
                num_requests=(100,),
            ),
        ).compile()
        assert [(j.benchmark, j.num_requests) for j in compiled.jobs] == [
            ("astar", 100),
            ("mcf", 100),
        ]

    def test_random_mode_dedups_repeated_draws_by_digest(self):
        compiled = small_spec(
            mode="random",
            samples=6,
            axes=axes(
                benchmark=("astar",),
                level=("unprotected",),
                num_requests=(100, 200),
            ),
        ).compile()
        # Six draws from two distinct points must repeat (pigeonhole).
        assert len(compiled.jobs) <= 2
        assert compiled.duplicates_dropped >= 4
        assert any("digest-identical" in w for w in compiled.warnings)

    def test_random_mode_is_seed_deterministic(self):
        spec = small_spec(
            mode="random",
            samples=6,
            sample_seed=5,
            axes=axes(
                benchmark=("astar", "mcf"),
                level=("unprotected", "encryption_only"),
                num_requests=(100, 200, 400),
            ),
        )
        first = [job.digest() for job in spec.compile().jobs]
        second = [job.digest() for job in spec.compile().jobs]
        assert first == second
        shifted = small_spec(
            mode="random", samples=6, sample_seed=6, axes=spec.axes
        )
        assert [j.digest() for j in shifted.compile().jobs] != first

    def test_baseline_anchors_added_once_per_configuration(self):
        compiled = small_spec(
            baselines=True,
            axes=axes(
                benchmark=("astar",),
                level=("encryption_only", "obfusmem_auth"),
                num_requests=(150, 300),
            ),
        ).compile()
        # 4 protected points + one unprotected anchor per length.
        assert compiled.baselines_added == 2
        anchors = [
            job
            for job in compiled.jobs
            if job.level == ProtectionLevel.UNPROTECTED
        ]
        assert {a.num_requests for a in anchors} == {150, 300}

    def test_no_anchor_duplicated_when_unprotected_is_an_axis_value(self):
        compiled = small_spec(baselines=True).compile()
        assert compiled.baselines_added == 0

    def test_machine_axis_reaches_the_job_machine_config(self):
        compiled = small_spec(
            axes=axes(
                benchmark=("astar",),
                level=("unprotected",),
                machine__channels=(1, 2),
            )
        ).compile()
        assert sorted(job.machine.channels for job in compiled.jobs) == [1, 2]


class TestCostModel:
    def test_worth_forking_needs_absolute_and_relative_depth(self):
        model = CostModel(min_shared_requests=100, min_shared_fraction=0.10)
        assert model.worth_forking(100, 1000)
        assert not model.worth_forking(99, 500)  # below the absolute floor
        assert not model.worth_forking(100, 1001)  # below the fraction
        assert not model.worth_forking(0, 100)

    def test_interval_is_none_without_warm_starts(self):
        plan = plan_sweep([JobSpec("astar", "unprotected", None, 50, SEED)])
        assert CostModel().interval_for(plan) is None

    def test_interval_scales_with_the_shortest_fork(self):
        model = CostModel()
        jobs = [
            JobSpec("astar", "unprotected", None, n, SEED) for n in (200, 400)
        ]
        interval = model.interval_for(plan_sweep(jobs, model))
        assert interval is not None
        # A slice boundary must land inside the seeding run's tail even at
        # the conservative events-per-request floor.
        tail_events = 200 * model.min_events_per_request * (
            1.0 - max(model.save_milestones)
        )
        assert 32 <= interval <= tail_events


class TestPlanSweep:
    def family_jobs(self, lengths, level="encryption_only"):
        return [JobSpec("astar", level, None, n, SEED) for n in lengths]

    def test_family_members_fan_out_across_waves(self):
        plan = plan_sweep(self.family_jobs((150, 300, 600)))
        assert len(plan.waves) == 3
        assert plan.families == 1 and plan.singletons == 0
        assert plan.warm_starts_planned == 2
        ranked = [wave[0] for wave in plan.waves]
        assert [j.spec.num_requests for j in ranked] == [150, 300, 600]
        assert [j.warm_start for j in ranked] == [False, True, True]
        assert [j.shared_requests for j in ranked] == [0, 150, 300]
        # Seeding members save; the deepest member only reads the store.
        assert [j.save_snapshots for j in ranked] == [True, True, False]
        assert all(j.use_store for j in ranked)

    def test_unworthy_forks_run_cold_in_wave_zero(self):
        plan = plan_sweep(self.family_jobs((50, 80)))
        assert len(plan.waves) == 1
        assert plan.warm_starts_planned == 0
        assert all(not job.use_store for job in plan.waves[0])

    def test_singletons_bypass_the_store(self):
        plan = plan_sweep(self.family_jobs((150,)))
        assert plan.singletons == 1
        job = plan.waves[0][0]
        assert not job.use_store and not job.warm_start

    def test_waves_batch_same_workload_points_adjacent(self):
        jobs = []
        for benchmark in ("mcf", "astar"):
            for level in ("unprotected", "encryption_only", "obfusmem_auth"):
                jobs.append(JobSpec(benchmark, level, None, 100, SEED))
        plan = plan_sweep(jobs)
        benchmarks = [job.spec.benchmark for job in plan.waves[0]]
        # One contiguous stretch per benchmark, whatever the input order.
        assert benchmarks == sorted(benchmarks)

    def test_describe_summarizes_the_plan(self):
        plan = plan_sweep(self.family_jobs((150, 300)))
        text = plan.describe()
        assert "2 jobs" in text and "warm starts planned: 1" in text
        assert "wave 0" in text and "wave 1" in text


class TestRunSweep:
    def test_scheduled_execution_is_bit_identical_and_warm(self, tmp_path):
        compiled = small_spec().compile()
        cold = ParallelRunner(workers=1).run(list(compiled.jobs))
        cold_by_digest = {
            spec.digest(): result
            for spec, result in zip(compiled.jobs, cold)
        }

        aggregator = ParetoAggregator()
        run = run_sweep(
            compiled,
            checkpoints=CheckpointStore(tmp_path),
            aggregator=aggregator,
        )
        assert set(run.results) == set(cold_by_digest)
        for spec in compiled.jobs:
            warm = run.result_for(spec)
            assert warm.execution_time_ns == cold_by_digest[spec.digest()].execution_time_ns
            assert warm.stats == cold_by_digest[spec.digest()].stats
        # The schedule actually forked: provenance lands in the manifest.
        assert run.manifest.checkpoint_hits == run.plan.warm_starts_planned
        assert run.manifest.events_resumed > 0
        assert run.manifest.jobs == len(compiled.jobs)
        # The streaming aggregator saw every point and found its anchors.
        assert aggregator.pending == 0
        assert len(aggregator.points()) == 2  # the two protected points
        frontier = aggregator.frontier()
        assert frontier, "a non-empty sweep must have a frontier"
        for a in frontier:
            assert not any(b.dominates(a) for b in frontier)

class TestCli:
    def _spec_file(self, tmp_path, payload=None):
        path = tmp_path / "sweep.json"
        payload = payload or small_spec().to_jsonable()
        path.write_text(json.dumps(payload))
        return path

    def test_dry_run_prints_the_plan_without_simulating(self, tmp_path, capsys):
        from repro.__main__ import main

        main(["sweep", "--spec", str(self._spec_file(tmp_path)), "--dry-run"])
        out = capsys.readouterr().out
        assert "compiled 4 job(s)" in out
        assert "sweep plan:" in out
        assert "warm starts planned: 2" in out
        assert "executed" not in out  # nothing ran

    def test_bad_spec_exits_with_a_message(self, tmp_path):
        from repro.__main__ import main

        path = self._spec_file(tmp_path, {"axes": {"benchmark": ["astar"]}})
        with pytest.raises(SystemExit, match="level"):
            main(["sweep", "--spec", str(path), "--dry-run"])

    def test_full_run_writes_the_frontier_csv(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.experiments import runner
        from repro.experiments.executor import RunManifest

        runner.configure(cache_enabled=True)  # opt back in (hermetic conftest)
        csv_path = tmp_path / "pareto.csv"
        main(
            [
                "sweep",
                "--spec",
                str(self._spec_file(tmp_path)),
                "--pareto",
                str(csv_path),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert "checkpoint warm-start(s)" in out
        assert "pareto frontier:" in out
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0].startswith("scheme,benchmark")
        assert len(rows) >= 2  # header plus at least one frontier point
        manifest = RunManifest.load(tmp_path / "cache" / "manifests" / "sweep.json")
        assert manifest is not None and manifest.checkpoint_hits > 0


class TestManifestWarnings:
    def test_compile_warnings_reach_the_manifest(self, tmp_path):
        compiled = small_spec(
            axes=axes(
                benchmark=("astar", "astar"),
                level=("unprotected",),
                num_requests=(60,),
            )
        ).compile()
        run = run_sweep(compiled)
        assert any("duplicate value" in w for w in run.manifest.warnings)
