"""Trace-cache tests: content addressing, damage tolerance, shared budget.

The persistent trace cache lets repeated jobs skip the front end (trace
generation / hierarchy filtering) entirely.  That is only safe if a warm
hit is bit-identical to a cold build, every kind of on-disk damage
degrades to a miss, ``--no-cache`` really bypasses it, and its entries
share one LRU byte budget with the result cache they live next to.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import runner, trace_cache
from repro.experiments.executor import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    JobSpec,
    ResultCache,
)
from repro.experiments.trace_cache import (
    TRACE_SCHEMA_VERSION,
    KernelTraceSpec,
    SyntheticTraceSpec,
    TraceCache,
)
from repro.errors import ConfigurationError
from repro.mem.hierarchy import HierarchyConfig
from repro.system.config import ProtectionLevel

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def isolated_trace_cache(tmp_path):
    """Point the process-wide trace cache at a scratch dir for every test."""
    trace_cache.sync(enabled=True, directory=tmp_path / "cache", max_bytes=None)
    trace_cache.reset_counters()
    yield
    trace_cache.reset_config()
    trace_cache.reset_counters()


def small_spec(seed: int = 3) -> SyntheticTraceSpec:
    return SyntheticTraceSpec("astar", 120, seed)


class TestSpecs:
    def test_synthetic_digest_is_stable_and_distinct(self):
        assert small_spec().digest() == small_spec().digest()
        assert small_spec(3).digest() != small_spec(4).digest()
        assert (
            SyntheticTraceSpec("astar", 120, 3).digest()
            != SyntheticTraceSpec("mcf", 120, 3).digest()
        )

    def test_kernel_digest_covers_params_and_hierarchy(self):
        base = KernelTraceSpec.create("sequential_scan", array_bytes=1 << 16)
        assert base.digest() == KernelTraceSpec.create(
            "sequential_scan", array_bytes=1 << 16
        ).digest()
        assert (
            base.digest()
            != KernelTraceSpec.create("sequential_scan", array_bytes=1 << 17).digest()
        )
        narrow = KernelTraceSpec.create(
            "sequential_scan",
            hierarchy=HierarchyConfig(cores=1, l3_assoc=4),
            array_bytes=1 << 16,
        )
        assert base.digest() != narrow.digest()

    def test_invalid_specs_fail_fast(self):
        with pytest.raises(ConfigurationError):
            SyntheticTraceSpec("not-a-benchmark", 100, 1)
        with pytest.raises(ConfigurationError):
            SyntheticTraceSpec("astar", 0, 1)
        with pytest.raises(ConfigurationError):
            KernelTraceSpec(kernel="not-a-kernel")
        with pytest.raises(ConfigurationError):
            KernelTraceSpec(kernel="stencil", params=(("grid_bytes", "huge"),))


class TestTraceCacheStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = small_spec()
        built = spec.build()
        cache.put(spec, built)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.name == built.name
        assert loaded.instructions_per_request == built.instructions_per_request
        assert loaded.records == built.records  # exact floats, exact flags

    def test_kernel_trace_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = KernelTraceSpec.create(
            "random_lookup",
            hierarchy=HierarchyConfig(cores=1, l1_size=4 << 10, l3_size=64 << 10),
            table_bytes=256 << 10,
            lookups=2000,
        )
        built = spec.build()
        cache.put(spec, built)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.records == built.records

    def test_damage_degrades_to_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = small_spec()
        path = cache.put(spec, spec.build())

        path.write_text("{corrupt")
        assert cache.get(spec) is None

        payload = {
            "schema": TRACE_SCHEMA_VERSION + 1,
            "kind": spec.kind,
            "spec": spec.to_jsonable(),
            "trace": spec.build().to_jsonable(),
        }
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None  # schema skew

        payload["schema"] = TRACE_SCHEMA_VERSION
        payload["kind"] = "kernel"
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None  # kind mismatch

        payload["kind"] = spec.kind
        payload["spec"] = SyntheticTraceSpec("astar", 120, 99).to_jsonable()
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None  # digest collision / spec echo mismatch

        payload["spec"] = spec.to_jsonable()
        payload["trace"] = {"name": "x"}
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None  # malformed trace body

        cache.put(spec, spec.build())  # a fresh put repairs the entry
        assert cache.get(spec) is not None


class TestCachedTrace:
    def test_hit_and_miss_counters(self):
        spec = small_spec()
        first = trace_cache.cached_trace(spec)
        second = trace_cache.cached_trace(spec)
        assert first.records == second.records
        assert trace_cache.counters() == (1, 1)

    def test_no_cache_bypasses_the_store(self, tmp_path):
        trace_cache.sync(enabled=False, directory=tmp_path / "off", max_bytes=None)
        spec = small_spec()
        first = trace_cache.cached_trace(spec)
        second = trace_cache.cached_trace(spec)
        assert second is first  # the in-process memo still serves repeats
        assert trace_cache.counters() == (1, 1)  # build once, memo-hit once
        assert not (tmp_path / "off").exists()  # and nothing was written

    def test_memo_serves_repeats_and_clears(self, tmp_path):
        trace_cache.sync(enabled=False, directory=tmp_path / "off", max_bytes=None)
        spec = small_spec()
        first = trace_cache.cached_trace(spec)
        assert trace_cache.cached_trace(spec) is first
        trace_cache.clear_memo()
        rebuilt = trace_cache.cached_trace(spec)
        assert rebuilt is not first  # cold again after an explicit clear
        assert rebuilt.records == first.records

    def test_memo_is_bounded_lru(self, tmp_path):
        trace_cache.sync(enabled=False, directory=tmp_path / "off", max_bytes=None)
        specs = [small_spec(seed) for seed in range(trace_cache.MEMO_MAX_ENTRIES + 1)]
        built = [trace_cache.cached_trace(spec) for spec in specs]
        # The oldest entry was evicted; the newest survives.
        assert trace_cache.cached_trace(specs[-1]) is built[-1]
        assert trace_cache.cached_trace(specs[0]) is not built[0]

    def test_traces_for_benchmark_matches_simulator_seeding(self):
        traces = trace_cache.traces_for_benchmark("astar", 120, seed=7, cores=2)
        assert [t.name for t in traces] == ["astar", "astar"]
        per_core = [
            SyntheticTraceSpec("astar", 120, 7).build(),
            SyntheticTraceSpec("astar", 120, 1007).build(),
        ]
        assert [t.records for t in traces] == [t.records for t in per_core]
        # Warm pass: same traces, all hits.
        again = trace_cache.traces_for_benchmark("astar", 120, seed=7, cores=2)
        assert [t.records for t in again] == [t.records for t in traces]
        assert trace_cache.counters() == (2, 2)


class TestRunnerIntegration:
    @pytest.fixture(autouse=True)
    def restore_runner(self):
        yield
        runner.reset_config()
        trace_cache.reset_config()

    def test_runner_configure_drives_the_trace_cache(self, tmp_path):
        runner.configure(cache_enabled=True, cache_dir=tmp_path, cache_bytes=4096)
        config = trace_cache.get_config()
        assert config.enabled and config.directory == tmp_path
        assert config.max_bytes == 4096
        runner.configure(cache_enabled=False)
        assert not trace_cache.get_config().enabled

    def test_job_execute_is_identical_warm_and_cold(self, tmp_path):
        trace_cache.sync(enabled=True, directory=tmp_path, max_bytes=None)
        spec = JobSpec(
            benchmark="astar",
            level=ProtectionLevel.UNPROTECTED,
            num_requests=80,
            seed=5,
        )
        cold = spec.execute()
        assert trace_cache.counters() == (0, 1)
        warm = spec.execute()
        assert trace_cache.counters() == (1, 1)
        assert cold == warm


class TestSharedEviction:
    def test_mixed_result_and_trace_entries_share_the_budget(self, tmp_path):
        """Regression: trace entries must participate in LRU eviction."""
        results = ResultCache(tmp_path)
        traces = TraceCache(tmp_path)
        job = JobSpec(
            benchmark="astar",
            level=ProtectionLevel.UNPROTECTED,
            num_requests=60,
            seed=1,
        )
        result_path = results.put(job, job.execute())
        old_trace, new_trace = small_spec(1), small_spec(2)
        old_path = traces.put(old_trace, old_trace.build())
        total = results.size_bytes()
        assert total == sum(p.stat().st_size for p in tmp_path.glob("*.json"))

        # Backdate the first trace far past the result entry, then give the
        # directory a budget that forces exactly one eviction on write.
        stamp = old_path.stat().st_mtime - 500.0
        os.utime(old_path, (stamp, stamp))
        new_bytes = len(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA_VERSION,
                    "kind": new_trace.kind,
                    "spec": new_trace.to_jsonable(),
                    "trace": new_trace.build().to_jsonable(),
                }
            )
        )
        bounded = TraceCache(tmp_path, max_bytes=total + new_bytes)
        bounded.put(new_trace, new_trace.build())
        assert bounded.get(old_trace) is None  # LRU trace evicted
        assert bounded.get(new_trace) is not None
        assert results.get(job) is not None  # newer result survived
        assert bounded.size_bytes() <= bounded.max_bytes

    def test_result_entries_can_be_evicted_by_trace_pressure(self, tmp_path):
        results = ResultCache(tmp_path)
        job = JobSpec(
            benchmark="astar",
            level=ProtectionLevel.UNPROTECTED,
            num_requests=60,
            seed=2,
        )
        result_path = results.put(job, job.execute())
        stamp = result_path.stat().st_mtime - 500.0
        os.utime(result_path, (stamp, stamp))
        spec = small_spec()
        trace_path = TraceCache(tmp_path).put(spec, spec.build())
        # Budget for the trace alone: eviction must drop the older result.
        bounded = TraceCache(tmp_path, max_bytes=trace_path.stat().st_size)
        assert bounded.evict() == 1
        assert results.get(job) is None  # the stale result made room
        assert bounded.get(spec) is not None


class TestCrossProcessReuse:
    def _run(self, code: str, cache_dir: Path) -> str:
        environment = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            **{CACHE_DIR_ENV: str(cache_dir)},
        )
        environment.pop(NO_CACHE_ENV, None)
        completed = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=environment,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        return completed.stdout

    def test_second_process_skips_the_front_end(self, tmp_path):
        cache_dir = tmp_path / "shared"
        warm = self._run(
            "from repro.experiments import trace_cache\n"
            "traces = trace_cache.traces_for_benchmark('astar', 100, seed=9, cores=2)\n"
            "spec = trace_cache.KernelTraceSpec.create(\n"
            "    'pointer_chase', pool_bytes=64 << 10, hops=4000)\n"
            "kernel = trace_cache.cached_trace(spec)\n"
            "print(trace_cache.counters())\n"
            "print(len(traces[0].records), len(kernel.records))\n",
            cache_dir,
        )
        assert "(0, 3)" in warm  # cold process: all misses

        # Second process: sabotage every front-end entry point, then resolve
        # the same specs.  Success proves zero trace generation and zero
        # hierarchy accesses — the warm cache carried everything.
        reuse = self._run(
            "from repro.cpu.generator import SyntheticTraceGenerator\n"
            "from repro.mem.hierarchy import CacheHierarchy\n"
            "def explode(*args, **kwargs):\n"
            "    raise AssertionError('front end ran on a warm cache')\n"
            "SyntheticTraceGenerator.generate = explode\n"
            "SyntheticTraceGenerator.generate_chunks = explode\n"
            "CacheHierarchy.access = explode\n"
            "CacheHierarchy.access_batch = explode\n"
            "from repro.experiments import trace_cache\n"
            "traces = trace_cache.traces_for_benchmark('astar', 100, seed=9, cores=2)\n"
            "spec = trace_cache.KernelTraceSpec.create(\n"
            "    'pointer_chase', pool_bytes=64 << 10, hops=4000)\n"
            "kernel = trace_cache.cached_trace(spec)\n"
            "print(trace_cache.counters())\n"
            "print(len(traces[0].records), len(kernel.records))\n",
            cache_dir,
        )
        assert "(3, 0)" in reuse  # warm process: all hits, no front end
        assert warm.splitlines()[1] == reuse.splitlines()[1]  # same traces
