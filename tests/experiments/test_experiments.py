"""Experiment runners: structure and headline-shape checks.

These use reduced request counts and benchmark subsets so the whole suite
stays fast; the full-scale regenerations are the benchmark harness's job.
"""

import pytest

from repro.core.config import ChannelInjection
from repro.experiments import clear_cache, figure4, figure5, table1, table3, table4
from repro.experiments import energy as energy_experiment
from repro.errors import ConfigurationError
from repro.experiments.runner import cached_run, select_benchmarks
from repro.system.config import ProtectionLevel

FAST = dict(num_requests=500, seed=7)
SUBSET = ["bwaves", "mcf", "astar"]


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_cache_returns_same_object(self):
        a = cached_run("astar", ProtectionLevel.UNPROTECTED, **FAST)
        b = cached_run("astar", ProtectionLevel.UNPROTECTED, **FAST)
        assert a is b

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            cached_run("quake", ProtectionLevel.UNPROTECTED, **FAST)

    def test_select_benchmarks(self):
        assert len(select_benchmarks(None)) == 15
        assert select_benchmarks(["mcf"]) == ["mcf"]
        with pytest.raises(ConfigurationError):
            select_benchmarks(["nope"])


class TestTable1:
    def test_rows_and_shape(self):
        rows = table1.run(benchmarks=SUBSET, **FAST)
        assert [r.benchmark for r in rows] == SUBSET
        for row in rows:
            assert abs(row.gap_error_pct) < 30.0  # gap reproduced
            assert row.measured_mpki == row.paper_mpki
        assert "Benchmark" in table1.format_results(rows)


class TestTable3:
    def test_oram_dwarfs_obfusmem(self):
        result = table3.run(benchmarks=SUBSET, **FAST)
        for row in result.rows:
            assert row.oram_overhead_pct > 5 * row.obfusmem_auth_overhead_pct
            assert row.speedup >= 1.0
        assert result.avg_oram_pct > 100
        assert result.avg_obfusmem_pct < 40
        assert "Avg" in table3.format_results(result)

    def test_high_mpki_suffers_more(self):
        result = table3.run(benchmarks=["mcf", "astar"], **FAST)
        by_name = {r.benchmark: r for r in result.rows}
        assert by_name["mcf"].oram_overhead_pct > by_name["astar"].oram_overhead_pct


class TestTable3Extended:
    def test_covers_every_registered_oram_scheme(self):
        result = table3.run_extended(benchmarks=["mcf"], **FAST)
        assert set(result.schemes) == set(table3.oram_scheme_names())
        assert {"oram", "oram_ring", "pyramid", "palermo"} <= set(result.schemes)
        for row in result.rows:
            assert set(row.oram_overheads_pct) == set(result.schemes)

    def test_backend_overheads_keep_design_ordering(self):
        result = table3.run_extended(benchmarks=["mcf", "bwaves"], **FAST)
        for row in result.rows:
            overheads = row.oram_overheads_pct
            assert overheads["palermo"] < overheads["oram_ring"] < overheads["oram"]
            assert overheads["pyramid"] < overheads["oram"]
            # Every ORAM design still costs more than the obfuscated bus.
            for scheme in result.schemes:
                assert overheads[scheme] > row.obfusmem_auth_overhead_pct
                assert row.speedup_over(scheme) > 1.0

    def test_formatting_has_a_column_per_scheme(self):
        result = table3.run_extended(benchmarks=["mcf"], **FAST)
        table = table3.format_extended(result)
        assert "Avg" in table
        for scheme in result.schemes:
            assert f"{scheme}%" in table


class TestFigure4:
    def test_levels_ordered(self):
        result = figure4.run(benchmarks=SUBSET, **FAST)
        for row in result.rows:
            assert row.encryption_pct <= row.obfusmem_pct + 0.5
            assert row.obfusmem_pct <= row.obfusmem_auth_pct + 0.5
        assert result.avg_obfusmem_auth_pct >= result.avg_encryption_pct


class TestFigure5:
    def test_opt_beats_unopt_at_scale(self):
        result = figure5.run(
            benchmarks=["bwaves"],
            channel_counts=(2, 4),
            num_requests=400,
            cores=2,
        )
        for channels in (2, 4):
            unopt = result.point(channels, ChannelInjection.UNOPT, True)
            opt = result.point(channels, ChannelInjection.OPT, True)
            assert opt.avg_overhead_pct <= unopt.avg_overhead_pct + 0.5
        assert "ObfusMem-OPT" in figure5.format_results(result)

    def test_missing_point_raises(self):
        result = figure5.run(
            benchmarks=["astar"], channel_counts=(2,), num_requests=300, cores=1
        )
        with pytest.raises(KeyError):
            result.point(8, ChannelInjection.OPT, True)


class TestTable4:
    def test_measured_comparison(self):
        result = table4.run(benchmark="bwaves", num_requests=400, seed=7)
        # Access-pattern rows: ObfusMem hides what unprotected leaks.
        assert result.unprotected.type_accuracy > 0.9
        assert result.obfusmem.type_accuracy < 0.6
        assert result.obfusmem.ciphertext_repeats == 0.0
        assert result.unprotected.spatial_locality > result.obfusmem.spatial_locality
        # Overhead rows.
        assert result.oram.capacity_overhead_pct >= 50.0
        assert result.oram.blocks_per_access >= 8
        assert result.obfusmem_write_amplification < 2.0
        assert "TCB" in table4.format_results(result)


class TestEnergy:
    def test_energy_experiment(self):
        result = energy_experiment.run(benchmark="astar", num_requests=300)
        assert result.analytical.oram_energy_factor == pytest.approx(780.0)
        assert result.obfusmem_measured.pads_per_access >= 16
        assert (
            result.oram_measured.cell_writes_per_access
            > 50 * max(result.obfusmem_measured.cell_writes_per_access, 0.01)
        )
        assert "Lifetime" in energy_experiment.format_results(result)
