"""HMAC construction (RFC 2202 vectors) and the two bus-MAC schemes."""

import pytest

from repro.crypto.mac import (
    constant_time_equal,
    encode_request_fields,
    encrypt_and_mac_tag,
    encrypt_then_mac_tag,
    hmac,
)
from repro.errors import CryptoError


class TestHmacRfc2202:
    """HMAC-MD5 test vectors from RFC 2202."""

    def test_case_1(self):
        tag = hmac(b"\x0b" * 16, b"Hi There", "md5")
        assert tag.hex() == "9294727a3638bb1c13f48ef8158bfc9d"

    def test_case_2(self):
        tag = hmac(b"Jefe", b"what do ya want for nothing?", "md5")
        assert tag.hex() == "750c783e6ab0b503eaa86e310a5db738"

    def test_case_3(self):
        tag = hmac(b"\xaa" * 16, b"\xdd" * 50, "md5")
        assert tag.hex() == "56be34521d144c88dbb8c733f0e8b3f6"

    def test_case_6_long_key(self):
        tag = hmac(
            b"\xaa" * 80,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "md5",
        )
        assert tag.hex() == "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"

    def test_sha1_case_1(self):
        tag = hmac(b"\x0b" * 20, b"Hi There", "sha1")
        assert tag.hex() == "b617318655057264e28bc0b6fb378c8ef146be00"


class TestHmacInterface:
    def test_unknown_hash_rejected(self):
        with pytest.raises(CryptoError):
            hmac(b"k", b"m", "sha256")

    def test_key_separates_tags(self):
        assert hmac(b"k1", b"m") != hmac(b"k2", b"m")


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_length_mismatch(self):
        assert not constant_time_equal(b"abc", b"abcd")


class TestRequestFieldEncoding:
    def test_layout(self):
        encoded = encode_request_fields(1, 0x1234, 99)
        assert len(encoded) == 17
        assert encoded[0] == 1
        assert int.from_bytes(encoded[1:9], "big") == 0x1234
        assert int.from_bytes(encoded[9:], "big") == 99

    def test_negative_rejected(self):
        with pytest.raises(CryptoError):
            encode_request_fields(-1, 0, 0)


class TestBusMacs:
    KEY = b"sixteen byte key"

    def test_encrypt_and_mac_binds_all_fields(self):
        base = encrypt_and_mac_tag(self.KEY, 0, 0x1000, 5)
        assert encrypt_and_mac_tag(self.KEY, 1, 0x1000, 5) != base  # type
        assert encrypt_and_mac_tag(self.KEY, 0, 0x1040, 5) != base  # address
        assert encrypt_and_mac_tag(self.KEY, 0, 0x1000, 6) != base  # counter

    def test_encrypt_and_mac_deterministic(self):
        assert encrypt_and_mac_tag(self.KEY, 0, 0x1000, 5) == encrypt_and_mac_tag(
            self.KEY, 0, 0x1000, 5
        )

    def test_encrypt_then_mac_binds_ciphertext(self):
        assert encrypt_then_mac_tag(self.KEY, b"ct-1") != encrypt_then_mac_tag(
            self.KEY, b"ct-2"
        )
