"""Diffie-Hellman, RSA signatures and the deterministic RNG."""

import pytest

from repro.crypto.diffie_hellman import DhGroup, DhParty, establish_session_key
from repro.crypto.rng import DeterministicRng, generate_prime, generate_safe_prime
from repro.crypto.rsa import RsaKeyPair, verify
from repro.errors import CryptoError


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(1), DeterministicRng(1)
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(1).fork("child")
        b = DeterministicRng(1).fork("child")
        assert a.token_bytes(8) == b.token_bytes(8)

    def test_fork_labels_independent(self):
        root = DeterministicRng(1)
        assert root.fork("a").token_bytes(8) != root.fork("b").token_bytes(8)

    def test_token_bytes_length(self):
        assert len(DeterministicRng(0).token_bytes(33)) == 33
        assert DeterministicRng(0).token_bytes(0) == b""

    def test_negative_bytes_rejected(self):
        with pytest.raises(CryptoError):
            DeterministicRng(0).token_bytes(-1)


class TestPrimes:
    def test_generated_prime_has_requested_bits(self):
        rng = DeterministicRng(11)
        prime = generate_prime(64, rng)
        assert prime.bit_length() == 64

    def test_prime_is_odd(self):
        assert generate_prime(32, DeterministicRng(3)) % 2 == 1

    def test_safe_prime_structure(self):
        p = generate_safe_prime(48, DeterministicRng(5))
        q = (p - 1) // 2
        # q must itself be prime: check with a few small divisions and a
        # Fermat test.
        assert pow(2, q - 1, q) == 1

    def test_tiny_prime_rejected(self):
        with pytest.raises(CryptoError):
            generate_prime(4, DeterministicRng(0))


class TestDiffieHellman:
    def test_both_sides_agree(self):
        key_a, key_b = establish_session_key(DeterministicRng(42))
        assert key_a == key_b
        assert len(key_a) == 16

    def test_different_seeds_different_keys(self):
        key_1, _ = establish_session_key(DeterministicRng(1))
        key_2, _ = establish_session_key(DeterministicRng(2))
        assert key_1 != key_2

    def test_out_of_range_peer_value_rejected(self):
        rng = DeterministicRng(9)
        group = DhGroup.generate(rng.fork("g"), bits=64)
        party = DhParty(group, rng.fork("p"))
        with pytest.raises(CryptoError):
            party.shared_secret(1)
        with pytest.raises(CryptoError):
            party.shared_secret(group.prime - 1)

    def test_bad_group_rejected(self):
        with pytest.raises(CryptoError):
            DhGroup(prime=10)


class TestRsa:
    def test_sign_verify(self):
        keypair = RsaKeyPair.generate(DeterministicRng(7), bits=256)
        signature = keypair.sign(b"measurement")
        assert verify(keypair.public, b"measurement", signature)

    def test_wrong_message_fails(self):
        keypair = RsaKeyPair.generate(DeterministicRng(7), bits=256)
        signature = keypair.sign(b"measurement")
        assert not verify(keypair.public, b"tampered", signature)

    def test_wrong_key_fails(self):
        signer = RsaKeyPair.generate(DeterministicRng(7), bits=256)
        other = RsaKeyPair.generate(DeterministicRng(8), bits=256)
        signature = signer.sign(b"m")
        assert not verify(other.public, b"m", signature)

    def test_signature_out_of_range_fails(self):
        keypair = RsaKeyPair.generate(DeterministicRng(7), bits=256)
        assert not verify(keypair.public, b"m", keypair.public.modulus + 1)

    def test_fingerprint_stable(self):
        keypair = RsaKeyPair.generate(DeterministicRng(7), bits=256)
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 20

    def test_tiny_modulus_rejected(self):
        with pytest.raises(CryptoError):
            RsaKeyPair.generate(DeterministicRng(1), bits=32)
