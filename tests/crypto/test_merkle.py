"""Merkle tree: verification, tamper detection, geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree
from repro.crypto.sha1 import sha1
from repro.errors import ConfigurationError, IntegrityError


class TestConstruction:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ConfigurationError):
            MerkleTree(0)

    def test_rejects_unary(self):
        with pytest.raises(ConfigurationError):
            MerkleTree(8, arity=1)

    def test_rounds_up_to_full_tree(self):
        tree = MerkleTree(100, arity=8)
        assert tree.num_leaves == 512
        assert tree.num_levels == 4  # 512 -> 64 -> 8 -> 1

    def test_binary_tree_geometry(self):
        tree = MerkleTree(4, arity=2)
        assert tree.num_leaves == 4
        assert tree.num_levels == 3


class TestVerification:
    def test_update_then_verify(self):
        tree = MerkleTree(64)
        tree.update(10, b"block ten")
        assert tree.verify(10, b"block ten") > 0

    def test_verify_wrong_payload_fails(self):
        tree = MerkleTree(64)
        tree.update(10, b"block ten")
        with pytest.raises(IntegrityError):
            tree.verify(10, b"block eleven")

    def test_root_changes_on_update(self):
        tree = MerkleTree(64)
        before = tree.root
        tree.update(0, b"data")
        assert tree.root != before

    def test_update_is_idempotent_on_root(self):
        tree = MerkleTree(64)
        tree.update(3, b"v")
        root = tree.root
        tree.update(3, b"v")
        assert tree.root == root

    def test_out_of_range_rejected(self):
        tree = MerkleTree(10)
        with pytest.raises(ConfigurationError):
            tree.verify(10, b"x")


class TestTamperDetection:
    def test_tampered_leaf_detected(self):
        tree = MerkleTree(64)
        tree.update(5, b"legit")
        tree.tamper_leaf(5, sha1(b"evil"))
        with pytest.raises(IntegrityError):
            tree.verify(5, b"legit")

    def test_tampered_internal_node_detected(self):
        tree = MerkleTree(64, arity=2)
        tree.update(5, b"legit")
        tree.tamper_node(1, 2, sha1(b"evil"))
        with pytest.raises(IntegrityError):
            tree.verify(5, b"legit")

    def test_root_is_untamperable(self):
        tree = MerkleTree(64)
        with pytest.raises(ConfigurationError):
            tree.tamper_node(tree.num_levels - 1, 0, sha1(b"evil"))

    def test_consistent_tamper_of_leaf_and_data_still_detected(self):
        # Attacker replaces both the stored data and the leaf hash; the
        # parent chain still mismatches because parents were not recomputed.
        tree = MerkleTree(64, arity=2)
        tree.update(7, b"original")
        tree.tamper_leaf(7, sha1(b"forged"))
        with pytest.raises(IntegrityError):
            tree.verify(7, b"forged")


@settings(max_examples=25)
@given(
    updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.binary(max_size=32)),
        min_size=1,
        max_size=20,
    )
)
def test_all_updates_remain_verifiable(updates):
    tree = MerkleTree(64, arity=4)
    latest = {}
    for index, payload in updates:
        tree.update(index, payload)
        latest[index] = payload
    for index, payload in latest.items():
        tree.verify(index, payload)
