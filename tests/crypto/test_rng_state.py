"""DeterministicRng state capture: getstate/setstate round-trips exactly."""

import pickle

from repro.crypto.rng import DeterministicRng


class TestStateRoundTrip:
    def test_setstate_resumes_the_same_stream(self):
        rng = DeterministicRng(42)
        for _ in range(100):
            rng.random()
        state = rng.getstate()
        expected = [rng.randint(0, 1_000_000) for _ in range(50)]
        rng.setstate(state)
        assert [rng.randint(0, 1_000_000) for _ in range(50)] == expected

    def test_state_restores_into_a_fresh_instance(self):
        source = DeterministicRng(7)
        source.token_bytes(33)
        state = source.getstate()
        twin = DeterministicRng(999)  # different seed: state must win
        twin.setstate(state)
        assert twin.token_bytes(16) == source.token_bytes(16)

    def test_snapshot_restore_aliases(self):
        rng = DeterministicRng(5)
        rng.gauss(0.0, 1.0)
        snap = rng.snapshot()
        expected = rng.random()
        rng.restore(snap)
        assert rng.random() == expected

    def test_state_survives_pickle(self):
        """Checkpoint blobs carry rng states across processes as pickles."""
        rng = DeterministicRng(2017)
        for _ in range(10):
            rng.expovariate(1.0)
        state = pickle.loads(pickle.dumps(rng.getstate()))
        expected = rng.getrandbits(64)
        rng.setstate(state)
        assert rng.getrandbits(64) == expected

    def test_restored_rng_forks_identically(self):
        """Fork derivation depends on the seed, which restore preserves."""
        rng = DeterministicRng(11)
        rng.random()
        state = rng.getstate()
        fresh = DeterministicRng(11)
        fresh.setstate(state)
        assert fresh.fork("oram").random() == rng.fork("oram").random()

    def test_state_does_not_alias_the_generator(self):
        """Drawing after getstate must not mutate the captured state."""
        rng = DeterministicRng(3)
        state = rng.getstate()
        first = rng.random()
        rng.random()
        rng.setstate(state)
        assert rng.random() == first
