"""AES-128 against FIPS-197 vectors plus structural properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES128, INV_SBOX, SBOX, expand_key
from repro.errors import CryptoError

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestKnownVectors:
    def test_fips197_appendix_c1_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips197_appendix_c1_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_nist_ecb_kat(self):
        # SP 800-38A F.1.1, first block.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected


class TestSbox:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_known_sbox_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16


class TestKeySchedule:
    def test_eleven_round_keys(self):
        assert len(expand_key(FIPS_KEY)) == 11

    def test_first_round_key_is_the_key(self):
        assert bytes(expand_key(FIPS_KEY)[0]) == FIPS_KEY

    def test_rejects_short_key(self):
        with pytest.raises(CryptoError):
            expand_key(b"short")

    def test_rejects_long_key(self):
        with pytest.raises(CryptoError):
            AES128(b"x" * 24)


class TestBlockValidation:
    def test_encrypt_rejects_wrong_size(self):
        with pytest.raises(CryptoError):
            AES128(FIPS_KEY).encrypt_block(b"tiny")

    def test_decrypt_rejects_wrong_size(self):
        with pytest.raises(CryptoError):
            AES128(FIPS_KEY).decrypt_block(b"x" * 17)


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16))
def test_encryption_is_not_identity(key):
    block = bytes(16)
    assert AES128(key).encrypt_block(block) != block


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
    bit=st.integers(min_value=0, max_value=127),
)
def test_avalanche_single_bit_changes_ciphertext(key, block, bit):
    cipher = AES128(key)
    flipped = bytearray(block)
    flipped[bit // 8] ^= 1 << (bit % 8)
    assert cipher.encrypt_block(block) != cipher.encrypt_block(bytes(flipped))
