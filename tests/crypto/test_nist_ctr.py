"""NIST SP 800-38A F.5.1 CTR-AES128 known-answer test."""

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_keystream, xor_bytes

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
INITIAL_COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")

PLAINTEXT_BLOCKS = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
]

CIPHERTEXT_BLOCKS = [
    "874d6191b620e3261bef6864990db6ce",
    "9806f66b7970fdff8617187bb9fffdff",
    "5ae4df3edbd5d35e5b4f09020db03eab",
    "1e031dda2fbe03d1792170a0f3009cee",
]


def test_sp800_38a_f51_ctr_encrypt():
    """Our keystream XORed with NIST's plaintext must give NIST's
    ciphertext for all four blocks (the low-64-bit counter increments
    match the 128-bit reference counter here: no carry crosses bit 64)."""
    cipher = AES128(KEY)
    plaintext = b"".join(bytes.fromhex(block) for block in PLAINTEXT_BLOCKS)
    expected = b"".join(bytes.fromhex(block) for block in CIPHERTEXT_BLOCKS)
    keystream = ctr_keystream(cipher, INITIAL_COUNTER, len(plaintext))
    assert xor_bytes(plaintext, keystream) == expected


def test_sp800_38a_f51_ctr_decrypt():
    cipher = AES128(KEY)
    ciphertext = b"".join(bytes.fromhex(block) for block in CIPHERTEXT_BLOCKS)
    expected = b"".join(bytes.fromhex(block) for block in PLAINTEXT_BLOCKS)
    keystream = ctr_keystream(cipher, INITIAL_COUNTER, len(ciphertext))
    assert xor_bytes(ciphertext, keystream) == expected
