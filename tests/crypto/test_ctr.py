"""Counter-mode encryption: pad streams, synchronisation, roundtrips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.ctr import (
    CtrPadGenerator,
    ctr_decrypt,
    ctr_encrypt,
    make_iv,
    xor_bytes,
)
from repro.errors import CryptoError

KEY = bytes(range(16))


class TestXor:
    def test_xor_roundtrip(self):
        a, b = b"\xaa" * 8, b"\x55" * 8
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(CryptoError):
            xor_bytes(b"ab", b"abc")


class TestIv:
    def test_iv_packing(self):
        iv = make_iv(nonce=1, counter=2)
        assert len(iv) == 16
        assert int.from_bytes(iv[:8], "big") == 1
        assert int.from_bytes(iv[8:], "big") == 2

    def test_nonce_overflow_rejected(self):
        with pytest.raises(CryptoError):
            make_iv(1 << 64, 0)

    def test_counter_overflow_rejected(self):
        with pytest.raises(CryptoError):
            make_iv(0, 1 << 64)


class TestPadGenerator:
    def test_synchronized_generators_produce_equal_pads(self):
        processor = CtrPadGenerator(KEY, nonce=7)
        memory = CtrPadGenerator(KEY, nonce=7)
        assert processor.next_pads(6) == memory.next_pads(6)

    def test_counter_advances_by_pad_count(self):
        generator = CtrPadGenerator(KEY)
        generator.next_pads(6)
        assert generator.counter == 6

    def test_peek_does_not_advance(self):
        generator = CtrPadGenerator(KEY)
        peeked = generator.peek_pads(3)
        assert generator.counter == 0
        assert generator.next_pads(3) == peeked

    def test_pads_never_repeat(self):
        generator = CtrPadGenerator(KEY)
        pads = generator.next_pads(64)
        assert len(set(pads)) == 64

    def test_different_nonces_different_streams(self):
        a = CtrPadGenerator(KEY, nonce=0)
        b = CtrPadGenerator(KEY, nonce=1)
        assert a.next_pads(4) != b.next_pads(4)

    def test_desync_after_skip(self):
        processor = CtrPadGenerator(KEY)
        memory = CtrPadGenerator(KEY)
        processor.next_pads(1)  # one message lost on the wire
        assert processor.next_pads(1) != memory.next_pads(1)

    def test_advance_skips(self):
        a = CtrPadGenerator(KEY)
        b = CtrPadGenerator(KEY)
        a.advance(5)
        b.next_pads(5)
        assert a.next_pads(1) == b.next_pads(1)

    def test_advance_rejects_rewind(self):
        with pytest.raises(CryptoError):
            CtrPadGenerator(KEY).advance(-1)

    def test_fork_preserves_state(self):
        generator = CtrPadGenerator(KEY, nonce=3)
        generator.next_pads(9)
        fork = generator.fork()
        assert fork.next_pads(2) == generator.next_pads(2)

    def test_zero_pads_rejected(self):
        with pytest.raises(CryptoError):
            CtrPadGenerator(KEY).next_pads(0)


class TestWholeMessage:
    def test_roundtrip(self):
        iv = make_iv(9, 0)
        message = b"the access pattern must be obfuscated on the memory bus!"
        assert ctr_decrypt(KEY, iv, ctr_encrypt(KEY, iv, message)) == message

    def test_empty_message(self):
        iv = make_iv(0, 0)
        assert ctr_encrypt(KEY, iv, b"") == b""

    @given(st.binary(max_size=200), st.integers(min_value=0, max_value=2**63))
    def test_roundtrip_property(self, message, counter):
        iv = make_iv(1, counter)
        assert ctr_decrypt(KEY, iv, ctr_encrypt(KEY, iv, message)) == message

    @given(st.integers(min_value=0, max_value=2**40))
    def test_same_iv_same_keystream(self, counter):
        iv = make_iv(2, counter)
        message = b"x" * 48
        assert ctr_encrypt(KEY, iv, message) == ctr_encrypt(KEY, iv, message)
