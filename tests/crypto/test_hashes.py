"""MD5 (RFC 1321) and SHA-1 (RFC 3174 / FIPS 180) test vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.md5 import md5, md5_hex
from repro.crypto.sha1 import sha1, sha1_hex

RFC1321_VECTORS = {
    b"": "d41d8cd98f00b204e9800998ecf8427e",
    b"a": "0cc175b9c0f1b6a831c399e269772661",
    b"abc": "900150983cd24fb0d6963f7d28e17f72",
    b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
    b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789": (
        "d174ab98d277d9f5a5611c2c9f419d9f"
    ),
    b"1234567890" * 8: "57edf4a22be3c955ac49da2e2107b67a",
}

SHA1_VECTORS = {
    b"": "da39a3ee5e6b4b0d3255bfef95601890afd80709",
    b"abc": "a9993e364706816aba3e25717850c26c9cd0d89d",
    b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": (
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    ),
}


@pytest.mark.parametrize("message,digest", sorted(RFC1321_VECTORS.items()))
def test_md5_rfc1321(message, digest):
    assert md5_hex(message) == digest


@pytest.mark.parametrize("message,digest", sorted(SHA1_VECTORS.items()))
def test_sha1_vectors(message, digest):
    assert sha1_hex(message) == digest


def test_md5_million_a_prefix():
    # Shortened variant of the classic one-million-a vector: check a
    # multi-chunk message (longer than one 64-byte block) hashes correctly.
    assert md5_hex(b"a" * 200) == md5(b"a" * 200).hex()
    assert len(md5(b"a" * 200)) == 16


def test_sha1_length():
    assert len(sha1(b"anything")) == 20


@given(st.binary(max_size=300))
def test_md5_deterministic(message):
    assert md5(message) == md5(message)


@given(st.binary(max_size=300), st.binary(max_size=300))
def test_md5_distinct_messages_distinct_digests(a, b):
    # Not a collision-resistance proof, just a sanity check on our
    # implementation: different short inputs should not collide.
    if a != b:
        assert md5(a) != md5(b)


@given(st.binary(max_size=200))
def test_sha1_padding_boundary(message):
    # Exercise all padding boundaries around the 55/56/64-byte edges.
    for pad in (54, 55, 56, 63, 64):
        padded = message[:pad]
        assert len(sha1(padded)) == 20
