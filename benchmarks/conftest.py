"""Shared settings for the benchmark harness.

Each benchmark regenerates one paper table/figure at reduced scale (fewer
requests / a benchmark subset) so the whole harness completes in minutes.
Full-scale regeneration: ``python -m repro.experiments.<table|figure>``.

The simulations are deterministic, so a single measured round per benchmark
is the honest configuration for pytest-benchmark.
"""

import pytest

# Workloads spanning the paper's spectrum: bandwidth-bound, latency-bound,
# cache-friendly.
SUBSET = ["bwaves", "mcf", "libquantum", "astar"]
REQUESTS = 1200
SEED = 2017


@pytest.fixture(scope="session", autouse=True)
def _clear_experiment_cache():
    from repro.experiments import clear_cache, runner

    # Hermetic timing: no persistent cache and no parallel fan-out, so every
    # measured round actually simulates (the scaling benchmark manages its
    # own executor explicitly).
    runner.configure(workers=1, cache_enabled=False)
    clear_cache()
    yield


def run_once(benchmark_fixture, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark_fixture.pedantic(
        function, args=args, kwargs=kwargs, iterations=1, rounds=1
    )
