"""Bench: the scheme×attack leakage matrix at reduced scale.

Runs the matrix over a representative 4-scheme × 4-attack grid (passive
wire attacks plus the §3.2 dictionary) on two workloads and times the
full capture-then-attack sweep.  The security orderings asserted by
``python -m repro matrix`` must hold at this scale too — a bench that
times a wrong matrix would be worthless — so the headline assertions are
the same three: obfusmem ≈ random for address/type attacks, plaintext
schemes leak, and verdicts agree with the trait predictions.

Writes wall-clock plus a per-scheme advantage summary to
``benchmarks/BENCH_attack_matrix.json``.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import run_once
from repro.experiments import matrix

SCHEMES = ["unprotected", "encryption_only", "obfusmem", "oram_ring"]
ATTACKS = ["dictionary", "fingerprint", "type_recovery", "rebuild_timing"]
WORKLOADS = ("bwaves", "mcf")
OUTPUT_PATH = Path(__file__).parent / "BENCH_attack_matrix.json"

_runs: dict[str, object] = {}


def _run_matrix():
    matrix.clear_memory()
    matrix.capture_workload.cache_clear()
    started = time.perf_counter()
    result = matrix.run(schemes=SCHEMES, attacks=ATTACKS, workloads=WORKLOADS)
    return result, time.perf_counter() - started


def test_matrix_sweep(benchmark):
    result, elapsed = run_once(benchmark, _run_matrix)
    _runs["result"] = result
    _runs["wall_s"] = elapsed
    assert len(result.cells) == len(SCHEMES) * len(ATTACKS)
    # The paper's security story, condensed to three orderings.
    assert result.cell("unprotected", "dictionary").outcome.advantage == 1.0
    assert result.cell("obfusmem", "dictionary").outcome.advantage == 0.0
    assert result.cell("obfusmem", "fingerprint").outcome.advantage < 0.2
    assert result.cell("oram_ring", "rebuild_timing").leaked
    agreed, total = result.agreement
    assert agreed == total


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verdicts_match_trait_predictions(scheme):
    result = _runs.get("result")
    if result is None:
        pytest.skip("matrix sweep did not run in this session")
    for attack in ATTACKS:
        assert result.cell(scheme, attack).agrees


def _emit():
    result = _runs.get("result")
    if result is None:
        return  # a subset of the module ran; don't emit a partial record
    advantages = {
        scheme: {
            attack: round(result.cell(scheme, attack).outcome.advantage, 4)
            for attack in ATTACKS
        }
        for scheme in SCHEMES
    }
    agreed, total = result.agreement
    payload = {
        "bench": "attack_matrix",
        "schemes": SCHEMES,
        "attacks": ATTACKS,
        "workloads": list(WORKLOADS),
        "num_requests": result.num_requests,
        "seed": result.seed,
        "cells": len(result.cells),
        "wall_s": round(_runs["wall_s"], 4),
        "agreement": f"{agreed}/{total}",
        "advantage": advantages,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1))


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_attack_matrix.json`` once the sweep has run."""
    yield
    _emit()
