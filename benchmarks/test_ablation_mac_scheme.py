"""Ablation: encrypt-and-MAC vs encrypt-then-MAC (§3.5, Observation 4).

Encrypt-then-MAC serializes the 64-stage MD5 behind encryption on every
request; encrypt-and-MAC computes H(r|a|c) from early-available inputs and
overlaps it, leaving only a small residual.  The bench quantifies the gap
the paper's design choice avoids.
"""


from conftest import SEED, run_once

from repro.core.config import AuthMode, ObfusMemConfig
from repro.core.controller import ObfusMemController
from repro.cpu.generator import make_trace
from repro.cpu.core import TraceDrivenCore
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.mem.address_mapping import AddressMapping
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

REQUESTS = 1000


def _run_with_auth(auth: AuthMode) -> float:
    profile = SPEC_PROFILES["mcf"]  # latency-sensitive: exposes serialization
    trace = make_trace(profile, REQUESTS, seed=SEED)
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(), stats)
    controller = ObfusMemController(
        engine, memory, ObfusMemConfig(auth=auth), stats, DeterministicRng(SEED)
    )
    core = TraceDrivenCore(engine, trace, controller, window=profile.window, stats=stats)
    core.start()
    engine.run()
    return core.execution_time_ns


def _run_all():
    return {auth: _run_with_auth(auth) for auth in AuthMode}


def test_mac_scheme_ablation(benchmark):
    times = run_once(benchmark, _run_all)
    none = times[AuthMode.NONE]
    eam = times[AuthMode.ENCRYPT_AND_MAC]
    etm = times[AuthMode.ENCRYPT_THEN_MAC]
    eam_cost = 100 * (eam / none - 1)
    etm_cost = 100 * (etm / none - 1)
    print(f"\nno auth:          {none/1000:9.1f} us")
    print(f"encrypt-and-MAC:  {eam/1000:9.1f} us (+{eam_cost:.1f}%)")
    print(f"encrypt-then-MAC: {etm/1000:9.1f} us (+{etm_cost:.1f}%)")

    # Observation 4: the overlapped scheme is strictly cheaper.
    assert none < eam < etm
    # Encrypt-and-MAC stays cheap (paper: ~2.6 points on average).
    assert eam_cost < 8.0
    # Serializing the MAC costs a multiple of the overlapped scheme.
    assert etm_cost > 2 * eam_cost
