"""Bench: serving-layer latency and throughput over real loopback HTTP.

Measures the three behaviours the serve PR promises, against a live
:class:`~repro.serve.harness.ServerThread` on an ephemeral port:

* **cache leverage** — the same job submitted twice: the first submission
  simulates cold, the repeat is served from the result cache.  Acceptance
  bar: warm mean latency at least ``CACHE_SPEEDUP_FLOOR`` (50x) below the
  cold submit-to-result latency.
* **sustained warm throughput** — a closed-loop load generator hammering
  the cached job from several client threads; requests/sec recorded.
* **admission control under burst** — a depth-2, single-worker server hit
  with distinct-seed cold jobs until it answers 429; refusals recorded
  and every accepted job still reaches a terminal state.

Results land in ``benchmarks/BENCH_serve_throughput.json`` together with
the service's own /metrics view (kernel events/sec, cache hit ratio).
"""

import json
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from repro.serve import LoadGenerator, ServerThread, ServiceConfig
from repro.serve.client import ServerBusy

BENCH_SPEC = {
    "benchmark": "mcf",
    "level": "obfusmem_auth",
    "num_requests": 8000,
    "seed": 2017,
}
WARM_ROUNDS = 15
LOAD_THREADS = 4
LOAD_REQUESTS_PER_THREAD = 15
CACHE_SPEEDUP_FLOOR = 50.0  # acceptance: warm hit >= 50x faster than cold

OUTPUT_PATH = Path(__file__).parent / "BENCH_serve_throughput.json"

_measured: dict[str, dict] = {}


@pytest.fixture(scope="module")
def server():
    """One cached server shared by the latency and throughput benches."""
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as cache_dir:
        config = ServiceConfig(
            workers=2, queue_depth=16, cache_dir=Path(cache_dir) / "cache"
        )
        with ServerThread(config) as running:
            yield running


def _burst_spec(seed: int) -> dict:
    """A distinct-digest cold spec for the saturation bench."""
    return dict(BENCH_SPEC, num_requests=4000, seed=seed)


def test_cold_vs_warm_cache_latency(server):
    client = server.client()
    started = time.perf_counter()
    cold_result = client.run(BENCH_SPEC)
    cold_s = time.perf_counter() - started

    warm_latencies = []
    for _ in range(WARM_ROUNDS):
        started = time.perf_counter()
        warm_result = client.run(BENCH_SPEC)
        warm_latencies.append(time.perf_counter() - started)
    assert warm_result == cold_result  # the cache serves the same bits

    warm_mean_s = statistics.mean(warm_latencies)
    speedup = cold_s / warm_mean_s
    _measured["cache_latency"] = {
        "cold_s": round(cold_s, 6),
        "warm_mean_s": round(warm_mean_s, 6),
        "warm_p50_s": round(statistics.median(warm_latencies), 6),
        "warm_max_s": round(max(warm_latencies), 6),
        "speedup": round(speedup, 1),
    }
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"warm hits only {speedup:.1f}x faster than cold "
        f"(floor {CACHE_SPEEDUP_FLOOR}x): cold={cold_s:.4f}s "
        f"warm_mean={warm_mean_s:.4f}s"
    )


def test_sustained_warm_throughput(server):
    report = LoadGenerator(
        host="127.0.0.1",
        port=server.port,
        spec=BENCH_SPEC,
        threads=LOAD_THREADS,
        requests_per_thread=LOAD_REQUESTS_PER_THREAD,
    ).run()
    assert report.failed == 0
    assert report.completed == LOAD_THREADS * LOAD_REQUESTS_PER_THREAD
    _measured["warm_throughput"] = report.to_jsonable()
    _measured["service_metrics"] = {
        key: server.service.metrics()[key]
        for key in (
            "cache_hits",
            "cache_hit_ratio",
            "sim_events_total",
            "sim_events_per_sec",
        )
    }


def test_burst_saturation_emits_429s():
    config = ServiceConfig(
        workers=1, queue_depth=2, cache_dir=None, retry_after_s=0.25
    )
    with ServerThread(config, drain_grace_s=120.0) as tiny:
        raw = tiny.client(max_retries=0)
        accepted, refusals = [], 0
        for seed in range(1, 17):
            try:
                accepted.append(raw.submit(_burst_spec(seed)))
            except ServerBusy:
                refusals += 1
        assert refusals > 0, "burst never saturated the depth-2 queue"
        for job in accepted:
            raw.cancel(job["id"])
        finals = [raw.wait(job["id"], deadline_s=120.0) for job in accepted]
        assert all(final["state"] in ("done", "cancelled") for final in finals)
        _measured["burst_saturation"] = {
            "offered": len(accepted) + refusals,
            "accepted": len(accepted),
            "rejected_429": refusals,
            "accepted_terminal": len(finals),
        }


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _measured:
        payload = {
            "bench": "serve_throughput",
            "spec": BENCH_SPEC,
            "warm_rounds": WARM_ROUNDS,
            "load_threads": LOAD_THREADS,
            "load_requests_per_thread": LOAD_REQUESTS_PER_THREAD,
            "cache_speedup_floor": CACHE_SPEEDUP_FLOOR,
        }
        payload.update(_measured)
        OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
