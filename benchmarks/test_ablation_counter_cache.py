"""Ablation: counter-cache sizing for the memory-encryption substrate.

Table 2 fixes the counter cache at 256KB (one 64B line per 4KB page ->
16MB of coverage).  This bench runs a uniform workload over a 24MB working
set — larger than a 256KB cache covers, far larger than 32KB covers, and
fully covered by 1MB — and shows the encryption overhead is counter-miss
driven.
"""

from conftest import SEED, run_once

from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.mem.address_mapping import AddressMapping
from repro.mem.scheduler import MemorySystem
from repro.secure.memory_encryption import SecureMemoryController
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

REQUESTS = 15_000
WORKING_SET = 24 << 20  # 24MB: 6144 pages of counters
SIZES_KB = (32, 256, 1024)


def _uniform_trace() -> Trace:
    rng = DeterministicRng(SEED)
    blocks = WORKING_SET // 64
    records = [
        TraceRecord(
            gap_ns=rng.expovariate(1 / 60.0),
            address=rng.randrange(blocks) * 64,
            is_write=rng.random() < 0.2,
        )
        for _ in range(REQUESTS)
    ]
    return Trace("uniform-24mb", records)


def _run_with_cache(trace: Trace, size_kb: int):
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(), stats)
    controller = SecureMemoryController(
        engine,
        memory,
        capacity_bytes=8 << 30,
        stats=stats,
        counter_cache_bytes=size_kb << 10,
        sequential_prefetch=False,  # isolate pure capacity behaviour
    )
    core = TraceDrivenCore(engine, trace, controller, window=4, stats=stats)
    core.start()
    engine.run()
    memenc = stats.group("memenc")
    misses = memenc.get("counter_misses")
    total = misses + memenc.get("counter_hits")
    return core.execution_time_ns, misses / total


def _sweep():
    trace = _uniform_trace()
    return {size: _run_with_cache(trace, size) for size in SIZES_KB}


def test_counter_cache_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for size, (time_ns, miss_rate) in sorted(results.items()):
        print(f"counter cache {size:5d}KB: exec {time_ns/1000:9.1f} us, "
              f"miss rate {100*miss_rate:5.1f}%")
    times = {size: t for size, (t, _) in results.items()}
    misses = {size: m for size, (_, m) in results.items()}
    # A starved cache thrashes; Table 2's 256KB lands in between; 1MB
    # covers the whole working set (compulsory misses only).
    assert misses[32] > misses[256] > misses[1024]
    assert misses[32] > 0.8  # thrashing
    assert misses[1024] < 0.5  # mostly compulsory
    # Execution time follows the miss rate.
    assert times[32] > times[256] > times[1024]
