"""Characterize Path ORAM's stash behaviour — the paper's failure argument.

§2.3/§6.2: "at least 50% of memory capacity is wasted in order to achieve a
reasonably acceptable failure rate" and "whole system deadlocks are
possible (but can be made unlikely)".  This bench measures stash occupancy
across bucket sizes and utilizations: Z=4 at ~50% utilization keeps the
stash tiny; shrinking the slack or the buckets drives it toward overflow.
"""

from conftest import SEED, run_once

from repro.crypto.rng import DeterministicRng
from repro.errors import OramDeadlockError
from repro.oram.path_oram import PathOram

ACCESSES = 3000


def _characterize(num_blocks, levels, bucket_size):
    rng = DeterministicRng(SEED)
    oram = PathOram(
        num_blocks,
        rng.fork(f"stash-{num_blocks}-{levels}-{bucket_size}"),
        levels=levels,
        bucket_size=bucket_size,
        stash_limit=10_000,
    )
    workload = rng.fork("workload")
    overflowed = False
    try:
        for i in range(ACCESSES):
            block = workload.randrange(num_blocks)
            if i % 2:
                oram.write(block, b"x")
            else:
                oram.read(block)
    except OramDeadlockError:
        overflowed = True
    return oram.max_stash_seen, oram.capacity_overhead, overflowed


def _sweep():
    # All at ~50% capacity waste (the paper's regime); bucket size shrinks.
    return {
        "Z=4": _characterize(250, 6, 4),  # the paper's operating point
        "Z=2": _characterize(256, 7, 2),
        "Z=1": _characterize(128, 7, 1),
    }


def test_stash_characterization(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for label, (max_stash, capacity_overhead, overflowed) in results.items():
        print(f"{label:16s} max stash {max_stash:5d}  "
              f"capacity waste {100*capacity_overhead:4.1f}%  "
              f"{'OVERFLOWED' if overflowed else ''}")

    healthy_stash = results["Z=4"][0]
    # The paper's operating point: a tiny stash despite >= 50% of tree
    # capacity wasted on dummies — this is what "an acceptable failure
    # rate" buys (Z=4 is Stefanov et al.'s recommended bucket size).
    assert healthy_stash < 10
    for label, (_, capacity_overhead, overflowed) in results.items():
        assert capacity_overhead >= 0.49
        assert not overflowed  # generous stash limit: characterizing, not failing
    # Shrinking the buckets inflates the stash super-linearly — the
    # failure-probability cliff the Z=4 choice avoids.
    assert results["Z=2"][0] > 1.5 * healthy_stash
    assert results["Z=1"][0] > 3 * healthy_stash
