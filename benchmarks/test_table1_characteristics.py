"""Bench: regenerate Table 1 (benchmark characteristics) and check shape."""

from conftest import REQUESTS, SEED, SUBSET, run_once

from repro.experiments import table1


def test_table1_characteristics(benchmark):
    rows = run_once(
        benchmark, table1.run, benchmarks=SUBSET, num_requests=REQUESTS, seed=SEED
    )
    print("\n" + table1.format_results(rows))
    by_name = {row.benchmark: row for row in rows}
    # MPKI is matched by construction; measured gaps track the paper's
    # within a modest tolerance.
    for row in rows:
        assert row.measured_mpki == row.paper_mpki
        assert abs(row.gap_error_pct) < 25.0
    # The ordering of memory intensity is preserved.
    assert by_name["bwaves"].measured_gap_ns < by_name["libquantum"].measured_gap_ns
    assert by_name["libquantum"].measured_gap_ns < by_name["astar"].measured_gap_ns
