"""Ablation: the three dummy-address designs of §3.3.

RANDOM loses locality and writes the array; ORIGINAL keeps locality but
still writes; FIXED (the paper's choice) is droppable — zero extra cell
writes and the lowest execution overhead (Observation 2).
"""

from conftest import SEED, run_once

from repro.core.config import DummyAddressPolicy
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

REQUESTS = 1000


def _cell_writes(stats):
    return sum(v for k, v in stats.items() if k.endswith(".array_writes"))


def _run_all_policies():
    profile = SPEC_PROFILES["lbm"]
    baseline = run_benchmark(
        profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS, seed=SEED
    )
    outcomes = {}
    for policy in DummyAddressPolicy:
        machine = MachineConfig(dummy_policy=policy)
        result = run_benchmark(
            profile,
            ProtectionLevel.OBFUSMEM,
            machine=machine,
            num_requests=REQUESTS,
            seed=SEED,
        )
        outcomes[policy] = (
            result.overhead_pct(baseline),
            _cell_writes(result.stats),
        )
    return outcomes, _cell_writes(baseline.stats)


def test_dummy_policy_ablation(benchmark):
    outcomes, baseline_writes = run_once(benchmark, _run_all_policies)
    fixed_overhead, fixed_writes = outcomes[DummyAddressPolicy.FIXED]
    original_overhead, original_writes = outcomes[DummyAddressPolicy.ORIGINAL]
    random_overhead, random_writes = outcomes[DummyAddressPolicy.RANDOM]
    print(f"\nfixed:    {fixed_overhead:6.1f}%  cell writes {fixed_writes:6.0f}")
    print(f"original: {original_overhead:6.1f}%  cell writes {original_writes:6.0f}")
    print(f"random:   {random_overhead:6.1f}%  cell writes {random_writes:6.0f}")

    # Observation 2: FIXED adds no cell writes over the unprotected run.
    assert fixed_writes <= baseline_writes * 1.05
    # ORIGINAL and RANDOM really write the array on every dummy.
    assert original_writes > 1.5 * fixed_writes
    assert random_writes > original_writes  # random also destroys locality
    # Performance follows the same ordering.
    assert fixed_overhead < original_overhead < random_overhead
