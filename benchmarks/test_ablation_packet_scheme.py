"""Ablation: split dummy requests vs uniform packets (the §7 InvisiMem
contrast).

InvisiMem hides the request type by giving every packet the same size —
reads carry dummy data, writes get data replies — paying the bandwidth
"regardless".  ObfusMem's split design substitutes *real* queued requests
for dummies whenever the load is mixed, removing that bandwidth (end of
§3.3).  This bench measures both schemes on a read+write-heavy workload;
the uniform scheme is modelled as the split scheme with substitution
disabled, which charges exactly the always-paired bandwidth the paper
attributes to it.
"""


from conftest import SEED, run_once

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

REQUESTS = 600  # per core, 4 cores


def _bus_bytes(stats):
    return sum(v for k, v in stats.items() if k.endswith(".bus_bytes"))


def _dummy_count(stats):
    return sum(
        v
        for k, v in stats.items()
        if k.endswith(".dummy_reads") or k.endswith(".dummy_writes")
    )


def _run_schemes():
    # 4 cores saturate the channel: the regime where "a heavy load of read
    # and write requests" (§7) makes substitution matter.
    profile = SPEC_PROFILES["bwaves"]  # 35% writes: mixed traffic
    baseline = run_benchmark(
        profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS, seed=SEED,
        cores=4,
    )
    split = run_benchmark(
        profile,
        ProtectionLevel.OBFUSMEM,
        machine=MachineConfig(substitute_dummies=True),
        num_requests=REQUESTS,
        seed=SEED,
        cores=4,
    )
    uniform = run_benchmark(
        profile,
        ProtectionLevel.OBFUSMEM,
        machine=MachineConfig(substitute_dummies=False),
        num_requests=REQUESTS,
        seed=SEED,
        cores=4,
    )
    return baseline, split, uniform


def test_packet_scheme_ablation(benchmark):
    baseline, split, uniform = run_once(benchmark, _run_schemes)
    split_overhead = split.overhead_pct(baseline)
    uniform_overhead = uniform.overhead_pct(baseline)
    print(f"\nsplit (substitution):   +{split_overhead:5.1f}%  "
          f"bus {_bus_bytes(split.stats)/1e6:.2f}MB  "
          f"dummies {_dummy_count(split.stats):.0f}")
    print(f"uniform (always pair):  +{uniform_overhead:5.1f}%  "
          f"bus {_bus_bytes(uniform.stats)/1e6:.2f}MB  "
          f"dummies {_dummy_count(uniform.stats):.0f}")

    # Substitution removes dummy traffic under mixed load...
    assert _dummy_count(split.stats) < 0.8 * _dummy_count(uniform.stats)
    # ...which shows up as less bus occupancy and lower overhead.
    assert _bus_bytes(split.stats) < _bus_bytes(uniform.stats)
    # Under heavy mixed load the saved bandwidth shows up as performance.
    assert split_overhead < uniform_overhead
    # Both still hide the type: every real request has a pair partner
    # (wire balance is asserted in the system tests).
