"""Bench: regenerate Table 4 (security comparison, measured).

Every qualitative row of the paper's Table 4 is backed by a measurement:
access-pattern hiding from wire traces, storage overhead and write
amplification from the functional Path ORAM, execution overheads from the
timing runs.
"""

from conftest import SEED, run_once

from repro.experiments import table4


def test_table4_security(benchmark):
    result = run_once(
        benchmark, table4.run, benchmark="bwaves", num_requests=800, seed=SEED
    )
    print("\n" + table4.format_results(result))

    # Spatial pattern: visible on the unprotected bus, hidden by ObfusMem.
    assert result.unprotected.spatial_locality > 0.3
    assert result.obfusmem.spatial_locality < 0.02
    # Temporal pattern: counter mode never repeats an encoding.
    assert result.obfusmem.ciphertext_repeats == 0.0
    # Read-vs-write: attacker blind (0.5) under ObfusMem, perfect (1.0)
    # on the unprotected bus.
    assert result.unprotected.type_accuracy == 1.0
    assert abs(result.obfusmem.type_accuracy - 0.5) < 0.05
    # Footprint: ObfusMem degenerates the attacker's estimate.
    assert result.obfusmem.footprint_error > result.unprotected.footprint_error
    # Inter-channel: injection keeps all channels co-active.
    assert result.obfusmem.channel_coactivity > 0.9
    assert result.unprotected.channel_coactivity < 0.9
    # Storage overhead: >= 100% for ORAM (>= 50% of capacity wasted), zero
    # for ObfusMem (no structures beyond the reserved dummy block).
    assert result.oram.capacity_overhead_pct >= 50.0
    # Write amplification: ~path-length for ORAM, ~1x for ObfusMem.
    assert result.oram.blocks_per_access // 2 >= 20
    assert result.obfusmem_write_amplification < 2.0
    # Execution overheads: the Table 3 relationship holds here too.
    assert result.oram_overhead_pct > 10 * result.obfusmem_overhead_pct
