"""Ablation: sequential counter prefetching in the encryption substrate.

The secure memory controller prefetches the next page's counter block when
a miss looks sequential (stream detection).  Streaming workloads then pay
one counter miss per *stream*, not per page; pointer-chasing workloads are
unaffected (the detector rejects them, avoiding wasted bandwidth).
"""

from conftest import SEED, run_once

from repro.cpu.core import TraceDrivenCore
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.cpu.trace import Trace, TraceRecord
from repro.mem.address_mapping import AddressMapping
from repro.mem.scheduler import MemorySystem
from repro.secure.memory_encryption import SecureMemoryController
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

REQUESTS = 1500


def _stream_trace():
    """A long sequential sweep: one LLC miss per block, page after page."""
    return Trace(
        "stream",
        [
            TraceRecord(gap_ns=60.0, address=i * 64, is_write=False)
            for i in range(REQUESTS)
        ],
    )


def _run(benchmark: str, prefetch: bool):
    if benchmark == "stream":
        trace = _stream_trace()
        window = 4
    else:
        profile = SPEC_PROFILES[benchmark]
        trace = make_trace(profile, REQUESTS, seed=SEED)
        window = profile.window
    engine = Engine()
    stats = StatRegistry()
    memory = MemorySystem(engine, AddressMapping(), stats)
    controller = SecureMemoryController(
        engine,
        memory,
        capacity_bytes=8 << 30,
        stats=stats,
        sequential_prefetch=prefetch,
    )
    core = TraceDrivenCore(engine, trace, controller, window=window, stats=stats)
    core.start()
    engine.run()
    memenc = stats.group("memenc")
    return {
        "time_ns": core.execution_time_ns,
        "misses": memenc.get("counter_misses"),
        "prefetches": memenc.get("counter_prefetches"),
    }


def _sweep():
    return {
        (benchmark, prefetch): _run(benchmark, prefetch)
        for benchmark in ("stream", "mcf")  # streaming vs pointer-chasing
        for prefetch in (False, True)
    }


def test_counter_prefetch_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for (name, prefetch), r in sorted(results.items()):
        print(f"{name:8s} prefetch={str(prefetch):5s} exec {r['time_ns']/1000:9.1f}us "
              f"misses {r['misses']:5.0f} prefetches {r['prefetches']:5.0f}")

    # Streaming: prefetch converts page-crossing misses into hits.
    stream_off = results[("stream", False)]
    stream_on = results[("stream", True)]
    assert stream_on["misses"] < 0.25 * stream_off["misses"]
    assert stream_on["prefetches"] > 0
    assert stream_on["time_ns"] <= stream_off["time_ns"] * 1.02

    # Pointer chasing: the stream detector keeps prefetching minimal, so
    # no bandwidth is wasted on useless counter fetches.
    mcf_on = results[("mcf", True)]
    mcf_off = results[("mcf", False)]
    assert mcf_on["prefetches"] < 0.25 * mcf_on["misses"]
    assert mcf_on["time_ns"] <= mcf_off["time_ns"] * 1.05