"""Ablation: the §6.2 timing-oblivious extension.

The paper argues ObfusMem's low overhead leaves room for timing-channel
protection ("spacing timing of requests ... and not dropping dummy
requests").  This bench quantifies the trade: the shaper flattens the
request-timing signal (regularity CV -> ~0) at a bounded execution cost.
"""

from conftest import SEED, run_once

from repro.analysis.leakage import timing_regularity
from repro.core.config import ChannelInjection, ObfusMemConfig
from repro.core.controller import ObfusMemController
from repro.core.oblivious import TimingObliviousShaper
from repro.cpu.core import TraceDrivenCore
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, MemoryBus
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

REQUESTS = 800


def _run(shaped: bool, epoch_ns: float = 120.0):
    profile = SPEC_PROFILES["libquantum"]  # moderate, bursty demand
    trace = make_trace(profile, REQUESTS, seed=SEED)
    engine = Engine()
    stats = StatRegistry()
    bus = MemoryBus()
    observer = BusObserver()
    bus.attach(observer)
    memory = MemorySystem(engine, AddressMapping(), stats, bus=bus)
    config = (
        ObfusMemConfig(channel_injection=ChannelInjection.NONE, drop_dummies=False)
        if shaped
        else ObfusMemConfig()
    )
    controller = ObfusMemController(engine, memory, config, stats, DeterministicRng(SEED))
    port = (
        TimingObliviousShaper(engine, controller, stats, epoch_ns=epoch_ns,
                              linger_epochs=16)
        if shaped
        else controller
    )
    core = TraceDrivenCore(engine, trace, port, window=profile.window, stats=stats)
    core.start()
    engine.run()
    return core.execution_time_ns, timing_regularity(observer.transfers)


def _both():
    return {"plain": _run(False), "shaped": _run(True)}


def test_timing_oblivious_ablation(benchmark):
    results = run_once(benchmark, _both)
    plain_time, plain_cv = results["plain"]
    shaped_time, shaped_cv = results["shaped"]
    overhead = 100 * (shaped_time / plain_time - 1)
    print(f"\nplain ObfusMem: {plain_time/1000:9.1f} us, timing CV {plain_cv:.2f}")
    print(f"shaped (§6.2):  {shaped_time/1000:9.1f} us, timing CV {shaped_cv:.2f} "
          f"(+{overhead:.1f}%)")

    # The shaper removes most of the timing signal (residual jitter is
    # downstream queueing, not demand correlation)...
    assert shaped_cv < 0.45
    assert shaped_cv < plain_cv / 2
    # ...at a real but bounded cost (requests wait for their slot).
    assert shaped_time > plain_time
    assert overhead < 120.0
