"""Bench: the extended Table-3 comparison across every ORAM backend.

One reduced-scale sweep of the paper subset through every registered ORAM
scheme (Path, Ring, Pyramid, Palermo) plus the unprotected baseline and
ObfusMem+Auth, asserting the structural claims the backend decompositions
promise — every ORAM design costs more than the obfuscated bus, Palermo's
overlap beats Ring's amortization beats the Path baseline, the Pyramid
probes undercut full-path movement — and writing the measured overhead
matrix to ``benchmarks/BENCH_oram_backends.json``.

The orderings come from latency arithmetic, not machine speed, so the
assertions hold across hosts.
"""

import json
import statistics
from pathlib import Path

import pytest

from conftest import SEED, SUBSET, run_once
from repro.experiments import table3

REQUESTS = 800  # enough memory traffic that backend latency dominates
OUTPUT_PATH = Path(__file__).parent / "BENCH_oram_backends.json"

_runs: dict[str, object] = {}


def _sweep():
    return table3.run_extended(
        benchmarks=SUBSET, num_requests=REQUESTS, seed=SEED
    )


def test_extended_table3_sweep(benchmark):
    result = run_once(benchmark, _sweep)
    _runs["result"] = result
    assert {"oram", "oram_ring", "pyramid", "palermo"} <= set(result.schemes)
    assert [row.benchmark for row in result.rows] == SUBSET


def test_every_oram_design_costs_more_than_the_obfuscated_bus():
    result = _runs.get("result") or _sweep()
    _runs["result"] = result
    for row in result.rows:
        for scheme in result.schemes:
            assert row.oram_overheads_pct[scheme] > row.obfusmem_auth_overhead_pct
            assert row.speedup_over(scheme) > 1.0


def test_backend_design_ordering_holds_per_benchmark():
    result = _runs.get("result") or _sweep()
    _runs["result"] = result
    for row in result.rows:
        overheads = row.oram_overheads_pct
        assert overheads["palermo"] < overheads["oram_ring"] < overheads["oram"]
        assert overheads["pyramid"] < overheads["oram"]


def test_path_baseline_average_matches_the_paper_regime():
    """The §4 point the paper makes: ORAM overhead is many hundreds of %."""
    result = _runs.get("result") or _sweep()
    _runs["result"] = result
    assert result.avg_overhead_pct("oram") > 100
    assert result.avg_obfusmem_pct < result.avg_overhead_pct("palermo")


def _emit():
    result = _runs.get("result")
    if result is None:
        return  # a subset of the module ran; don't emit a partial record
    payload = {
        "bench": "oram_backends",
        "benchmarks": SUBSET,
        "num_requests": REQUESTS,
        "seed": SEED,
        "schemes": list(result.schemes),
        "rows": [
            {
                "benchmark": row.benchmark,
                "oram_overheads_pct": {
                    scheme: round(row.oram_overheads_pct[scheme], 2)
                    for scheme in result.schemes
                },
                "obfusmem_auth_overhead_pct": round(
                    row.obfusmem_auth_overhead_pct, 2
                ),
            }
            for row in result.rows
        ],
        "avg_overheads_pct": {
            scheme: round(result.avg_overhead_pct(scheme), 2)
            for scheme in result.schemes
        },
        "avg_obfusmem_auth_pct": round(result.avg_obfusmem_pct, 2),
        "avg_speedup_over": {
            scheme: round(
                statistics.mean(row.speedup_over(scheme) for row in result.rows),
                2,
            )
            for scheme in result.schemes
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1))


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_oram_backends.json`` once the sweep has run."""
    yield
    _emit()
