"""Bench: raw event-kernel throughput — events/sec through the hot path.

Drives the full simulated system (trace core -> controller -> channel
scheduler -> PCM) for one bandwidth-bound workload (mcf) at the two ends of
the protection spectrum, timing :meth:`Engine.run` directly rather than
going through the experiment cache layers.  The measured events/sec and
requests/sec land in ``benchmarks/BENCH_sim_throughput.json``.

``BENCH_sim_throughput_baseline.json`` pins the pre-rewrite kernel's numbers
(ordered-dataclass heap entries, polling channel scheduler, commit a174f36).
The headline assertion is the PR's acceptance bar: the rebuilt kernel must
sustain at least 2x the baseline events/sec on the ObfusMem level.  Note the
rewrite also *removes* events (wake-on-state-change kills the speculative
polling wakeups: 39,295 -> ~31,000 events for this run), so the 2x is earned
entirely on wall-clock, not by inflating the numerator.

Wall-clock on shared CI machines is noisy (+/- 5-8 % observed here), so each
level is measured best-of-N and the gate has headroom: post-rewrite the
kernel measures ~2.1x on an idle machine.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import SEED, run_once
from repro.cpu.core import TraceDrivenCore
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry
from repro.system.builder import build_system
from repro.system.config import MachineConfig, ProtectionLevel

BENCHMARK = "mcf"
NUM_REQUESTS = 3000
ROUNDS = 5  # best-of, to shave scheduler noise off the wall-clock
SPEEDUP_FLOOR = 2.0  # acceptance: >= 2x baseline events/sec on ObfusMem

OUTPUT_PATH = Path(__file__).parent / "BENCH_sim_throughput.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_sim_throughput_baseline.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

_measured: dict[str, dict] = {}


def _simulate_once(level):
    """One cold end-to-end simulation; returns (wall_s, events_executed)."""
    profile = SPEC_PROFILES[BENCHMARK]
    trace = make_trace(profile, NUM_REQUESTS, seed=SEED)
    engine = Engine()
    stats = StatRegistry()
    rng = DeterministicRng(SEED).fork(f"run-{trace.name}-{level.value}")
    system = build_system(level, MachineConfig(), engine, stats, rng, bus=None)
    core = TraceDrivenCore(
        engine, trace, system.port, window=profile.window, stats=stats, core_id=0
    )
    core.start()
    started = time.perf_counter()
    engine.run(max_events=2000 * NUM_REQUESTS)
    system.flush()
    engine.run(max_events=2000 * NUM_REQUESTS)
    wall = time.perf_counter() - started
    return wall, engine.events_executed


def _measure(level):
    best_wall, events = None, None
    for _ in range(ROUNDS):
        wall, executed = _simulate_once(level)
        if best_wall is None or wall < best_wall:
            best_wall, events = wall, executed
    record = {
        "events": events,
        "wall_s": round(best_wall, 6),
        "events_per_sec": round(events / best_wall, 1),
        "requests_per_sec": round(NUM_REQUESTS / best_wall, 1),
    }
    _measured[level.value] = record
    return record


def test_throughput_unprotected(benchmark):
    record = run_once(benchmark, _measure, ProtectionLevel.UNPROTECTED)
    assert record["events"] > 0


def test_throughput_obfusmem_meets_2x_floor(benchmark):
    record = run_once(benchmark, _measure, ProtectionLevel.OBFUSMEM_AUTH)
    baseline = BASELINE["levels"]["obfusmem_auth"]["events_per_sec"]
    speedup = record["events_per_sec"] / baseline
    assert speedup >= SPEEDUP_FLOOR, (
        f"kernel throughput regressed: {record['events_per_sec']:,.0f} ev/s is "
        f"{speedup:.2f}x the pre-rewrite {baseline:,.0f} ev/s "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def _emit():
    payload = {
        "bench": "sim_throughput",
        "benchmark": BENCHMARK,
        "num_requests": NUM_REQUESTS,
        "seed": SEED,
        "rounds": ROUNDS,
        "levels": _measured,
        "baseline_events_per_sec": BASELINE["levels"]["obfusmem_auth"][
            "events_per_sec"
        ],
    }
    if "obfusmem_auth" in _measured:
        payload["speedup_vs_baseline"] = round(
            _measured["obfusmem_auth"]["events_per_sec"]
            / BASELINE["levels"]["obfusmem_auth"]["events_per_sec"],
            3,
        )
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _measured:
        _emit()
