"""Bench: front-end throughput — kernel accesses/sec through the hierarchy.

Times :func:`repro.cpu.kernels.trace_through_hierarchy` — the front end
that filters an application kernel's access stream through the L1/L2/L3
model to produce a memory trace — for all four kernels on the standard
small hierarchy.  The measured accesses/sec per kernel land in
``benchmarks/BENCH_frontend_throughput.json``.

``BENCH_frontend_throughput_baseline.json`` pins the pre-rewrite front
end's numbers (dict-keyed caches, dataclass lines, per-access generator
resumption — what ``reference=True`` still runs, measured at commit
c2d8f25 and rounded down ~5 % for cross-machine headroom).  The headline
assertion is the PR's acceptance bar: the slot-array fast path must
sustain at least 3x the pinned baseline accesses/sec on aggregate.  The
fast path is bit-identical to the reference (see
``tests/cpu/test_frontend_equivalence.py``), so the 3x is earned entirely
on wall-clock.

Wall-clock on shared CI machines is noisy (+/- 5-8 % observed), so each
kernel is measured best-of-N and the gates have headroom: post-rewrite
the fast path measures 3.8-5.0x per kernel on an idle machine.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import run_once
from repro.cpu import kernels
from repro.mem.hierarchy import HierarchyConfig

ROUNDS = 3  # best-of, to shave scheduler noise off the wall-clock
AGGREGATE_SPEEDUP_FLOOR = 3.0  # acceptance: >= 3x baseline accesses/sec
PER_KERNEL_SPEEDUP_FLOOR = 2.0  # regression floor per kernel, with headroom

HIERARCHY = {"cores": 1, "l1_size": 8 << 10, "l2_size": 32 << 10, "l3_size": 256 << 10}

KERNEL_CASES = {
    "sequential_scan": lambda: kernels.sequential_scan_chunks(
        2 << 20, passes=1, stride=8, write_fraction=0.2
    ),
    "random_lookup": lambda: kernels.random_lookup_chunks(4 << 20, lookups=20000),
    "pointer_chase": lambda: kernels.pointer_chase_chunks(2 << 20, hops=100000),
    "stencil": lambda: kernels.stencil_chunks(1 << 20, sweeps=3),
}

OUTPUT_PATH = Path(__file__).parent / "BENCH_frontend_throughput.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_frontend_throughput_baseline.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

_measured: dict[str, dict] = {}


def _filter_once(name: str) -> tuple[float, int]:
    """One cold front-end run; returns (wall_s, trace_records)."""
    config = HierarchyConfig(**HIERARCHY)
    started = time.perf_counter()
    trace, _hierarchy = kernels.trace_through_hierarchy(
        KERNEL_CASES[name](), config, name=name
    )
    wall = time.perf_counter() - started
    return wall, len(trace.records)


def _measure(name: str) -> dict:
    accesses = sum(len(chunk) for chunk in KERNEL_CASES[name]())
    best_wall, records = None, None
    for _ in range(ROUNDS):
        wall, produced = _filter_once(name)
        if best_wall is None or wall < best_wall:
            best_wall, records = wall, produced
    per_sec = accesses / best_wall
    record = {
        "accesses": accesses,
        "trace_records": records,
        "wall_s": round(best_wall, 6),
        "accesses_per_sec": round(per_sec, 1),
        "speedup_vs_baseline": round(
            per_sec / BASELINE["kernels"][name]["accesses_per_sec"], 3
        ),
    }
    _measured[name] = record
    return record


@pytest.mark.parametrize("name", sorted(KERNEL_CASES))
def test_kernel_throughput(benchmark, name):
    record = run_once(benchmark, _measure, name)
    assert record["accesses"] == BASELINE["kernels"][name]["accesses"], (
        "benchmark parameters drifted from the pinned baseline; re-pin "
        "BENCH_frontend_throughput_baseline.json"
    )
    assert record["speedup_vs_baseline"] >= PER_KERNEL_SPEEDUP_FLOOR, (
        f"front-end throughput regressed on {name}: "
        f"{record['accesses_per_sec']:,.0f} acc/s is "
        f"{record['speedup_vs_baseline']:.2f}x the reference path "
        f"(floor {PER_KERNEL_SPEEDUP_FLOOR}x)"
    )


def test_aggregate_meets_3x_floor():
    missing = [name for name in KERNEL_CASES if name not in _measured]
    for name in missing:
        _measure(name)
    total_accesses = sum(r["accesses"] for r in _measured.values())
    total_wall = sum(r["wall_s"] for r in _measured.values())
    baseline_wall = sum(
        BASELINE["kernels"][name]["accesses"]
        / BASELINE["kernels"][name]["accesses_per_sec"]
        for name in KERNEL_CASES
    )
    speedup = (total_accesses / total_wall) / (total_accesses / baseline_wall)
    _measured["_aggregate"] = {
        "accesses": total_accesses,
        "wall_s": round(total_wall, 6),
        "accesses_per_sec": round(total_accesses / total_wall, 1),
        "speedup_vs_baseline": round(speedup, 3),
    }
    assert speedup >= AGGREGATE_SPEEDUP_FLOOR, (
        f"aggregate front-end throughput is {speedup:.2f}x the pinned "
        f"reference path (floor {AGGREGATE_SPEEDUP_FLOOR}x)"
    )


def _emit():
    payload = {
        "bench": "frontend_throughput",
        "rounds": ROUNDS,
        "hierarchy": HIERARCHY,
        "kernels": {k: v for k, v in sorted(_measured.items()) if k != "_aggregate"},
    }
    if "_aggregate" in _measured:
        payload["aggregate"] = _measured["_aggregate"]
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _measured:
        _emit()
