"""Bench: regenerate the §5.2 energy/lifetime analysis.

Paper numbers reproduced exactly by the analytical model: ORAM ~780x read
energy per access vs ObfusMem 3.9x (a ~200x PCM energy reduction), 800
pads per ORAM access vs 64 (worst case, 4 channels) / 16 (best case) for
ObfusMem, and ~100x lifetime improvement.  The measured columns come from
simulation statistics.
"""

import pytest
from conftest import SEED, run_once

from repro.experiments import energy


def test_energy_lifetime(benchmark):
    result = run_once(
        benchmark, energy.run, benchmark="lbm", num_requests=800, seed=SEED
    )
    print("\n" + energy.format_results(result))
    analytical = result.analytical

    # §5.2 arithmetic, exactly.
    assert analytical.oram_energy_factor == pytest.approx(780.0)
    assert analytical.obfusmem_energy_factor == pytest.approx(3.9)
    assert analytical.pcm_energy_reduction == pytest.approx(200.0)
    assert analytical.oram_pads_per_access == 800
    assert analytical.obfusmem_pads_worst_case == 64
    assert analytical.obfusmem_pads_best_case == 16
    assert analytical.lifetime_improvement == pytest.approx(100.0)

    # Measured pads: between the best and worst case per §5.2.
    measured = result.obfusmem_measured
    assert 16 <= measured.pads_per_access <= 64
    # Measured wear: ORAM rewrites ~100 blocks per access; ObfusMem adds no
    # writes beyond the workload's own (dummies dropped).
    assert result.oram_measured.cell_writes_per_access == pytest.approx(100.0)
    assert measured.cell_writes_per_access < 2.0
    assert measured.dummy_writes_dropped > 0
