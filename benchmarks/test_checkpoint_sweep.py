"""Bench: warm-started sweeps — fork-from-checkpoint vs cold execution.

A request-count sweep of one configuration shares a trace prefix, so each
job can fork from the deepest safe-prefix checkpoint a shorter sibling
left behind instead of re-simulating the shared prefix from zero (see
``repro/experiments/checkpoints.py``).  The scenario benchmarked here is
the common incremental one: a short sweep has already run with a
checkpoint store (the untimed seed phase), and now the sweep is
*extended* to longer traces.  Cold, every extension job replays its full
event stream; warm, each forks near the frontier the seed phase reached
and simulates only the remainder — a >5x reduction in kernel events on
this grid.

The test asserts the warm results are **bit-identical** to the cold ones
(execution times and full stats) and that warm is at least 2x faster in
wall-clock, then writes both timings plus the speedup to
``benchmarks/BENCH_checkpoint_sweep.json``.  The event-count arithmetic,
not machine speed, produces the win, so the 2x floor holds across hosts.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from conftest import SEED, run_once
from repro.experiments.checkpoints import CheckpointStore
from repro.experiments.executor import JobSpec, ParallelRunner

SWEEP_BENCHMARK = "mcf"
SWEEP_SCHEME = "obfusmem_auth"  # the paper's full scheme; uniform event cost
SEED_LENGTHS = [1000, 2000, 3000, 4000, 5000]  # untimed: populates the store
EXTENSION_LENGTHS = [6000, 7000, 8000, 9000, 10000]  # timed: cold vs warm
CHECKPOINT_INTERVAL_EVENTS = 5_000
MIN_WARM_SPEEDUP = 2.0
OUTPUT_PATH = Path(__file__).parent / "BENCH_checkpoint_sweep.json"

_runs: dict[str, object] = {}


def _specs(lengths):
    return [
        JobSpec(SWEEP_BENCHMARK, SWEEP_SCHEME, num_requests=n, seed=SEED)
        for n in lengths
    ]


def _run_extension(store=None, interval=CHECKPOINT_INTERVAL_EVENTS):
    runner = ParallelRunner(
        workers=1, checkpoints=store, checkpoint_interval_events=interval
    )
    started = time.perf_counter()
    results = runner.run(_specs(EXTENSION_LENGTHS), label="checkpoint-sweep")
    return results, time.perf_counter() - started


def test_cold_extension_baseline(benchmark):
    results, elapsed = run_once(benchmark, _run_extension)
    _runs["cold_s"] = elapsed
    _runs["cold_results"] = results
    assert len(results) == len(EXTENSION_LENGTHS)


def test_warm_extension_is_twice_as_fast_and_bit_identical(benchmark):
    directory = Path(tempfile.mkdtemp(prefix="repro-ckpt-bench-"))
    try:
        store = CheckpointStore(directory)
        # Seed phase (untimed): the short sweep that, in the modelled
        # workflow, already ran yesterday and left its snapshots behind.
        seed_started = time.perf_counter()
        ParallelRunner(
            workers=1,
            checkpoints=store,
            checkpoint_interval_events=CHECKPOINT_INTERVAL_EVENTS,
        ).run(_specs(SEED_LENGTHS), label="checkpoint-sweep-seed")
        _runs["seed_s"] = time.perf_counter() - seed_started

        results, elapsed = run_once(benchmark, _run_extension, store)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    _runs["warm_s"] = elapsed
    cold_results = _runs.get("cold_results") or _run_extension()[0]
    # Headline correctness: forking from a snapshot must be invisible in
    # the physics — identical execution times AND identical full stats.
    for cold, warm in zip(cold_results, results):
        assert warm.execution_time_ns == cold.execution_time_ns
        assert warm.stats == cold.stats
    cold_s = _runs.get("cold_s")
    if cold_s is not None:
        _runs["speedup"] = cold_s / elapsed
        assert _runs["speedup"] >= MIN_WARM_SPEEDUP


def _emit():
    if "cold_s" not in _runs or "warm_s" not in _runs:
        return  # a subset of the module ran; don't emit a partial record
    payload = {
        "bench": "checkpoint_sweep",
        "benchmark": SWEEP_BENCHMARK,
        "scheme": SWEEP_SCHEME,
        "seed_lengths": SEED_LENGTHS,
        "extension_lengths": EXTENSION_LENGTHS,
        "checkpoint_interval_events": CHECKPOINT_INTERVAL_EVENTS,
        "seed_s": round(_runs.get("seed_s", 0.0), 4),
        "cold_s": round(_runs["cold_s"], 4),
        "warm_s": round(_runs["warm_s"], 4),
        "speedup": round(_runs["cold_s"] / _runs["warm_s"], 3),
        "min_speedup_asserted": MIN_WARM_SPEEDUP,
        "bit_identical": True,  # asserted above, for the record
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1))


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_checkpoint_sweep.json`` once both phases have run."""
    yield
    _emit()
