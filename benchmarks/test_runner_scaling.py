"""Bench: executor scaling — serial vs 4-worker wall-clock on a Table 1 subset.

Runs the same small (benchmark x unprotected) job grid through the
:class:`~repro.experiments.executor.ParallelRunner` with one worker and
with four, with caching disabled so every job actually simulates.  The
measured wall-clocks (and the speedup) are written to
``benchmarks/BENCH_runner_scaling.json`` so runner-scaling regressions are
visible across commits, following the ``BENCH_*.json`` convention for
machine-generated benchmark artifacts.

The correctness assertion — parallel results bit-identical to serial —
rides along, so this bench doubles as an end-to-end determinism check at
benchmark scale.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import SEED, run_once
from repro.experiments.executor import JobSpec, ParallelRunner
from repro.system.config import MachineConfig, ProtectionLevel

SCALING_SUBSET = ["bwaves", "mcf", "libquantum", "astar"]
SCALING_REQUESTS = 800
PARALLEL_WORKERS = 4
OUTPUT_PATH = Path(__file__).parent / "BENCH_runner_scaling.json"

_timings: dict[str, float] = {}


def _specs():
    machine = MachineConfig()
    return [
        JobSpec(name, ProtectionLevel.UNPROTECTED, machine, SCALING_REQUESTS, SEED)
        for name in SCALING_SUBSET
    ]


def _timed_run(workers):
    executor = ParallelRunner(workers=workers)  # no cache: every job simulates
    started = time.perf_counter()
    results = executor.run(_specs(), label=f"scaling-{workers}w")
    elapsed = time.perf_counter() - started
    return results, elapsed


def test_serial_baseline(benchmark):
    results, elapsed = run_once(benchmark, _timed_run, 1)
    _timings["serial_s"] = elapsed
    assert len(results) == len(SCALING_SUBSET)


def test_parallel_four_workers(benchmark):
    (parallel_results, elapsed) = run_once(benchmark, _timed_run, PARALLEL_WORKERS)
    _timings["parallel_s"] = elapsed
    serial_results = ParallelRunner(workers=1).run(_specs())
    assert parallel_results == serial_results  # bit-identical, incl. stats


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if "serial_s" not in _timings or "parallel_s" not in _timings:
        return  # a subset of the module ran; don't emit a partial record
    payload = {
        "bench": "runner_scaling",
        "cpus": os.cpu_count(),  # speedup is bounded by this
        "jobs": len(SCALING_SUBSET),
        "benchmarks": SCALING_SUBSET,
        "num_requests": SCALING_REQUESTS,
        "workers": PARALLEL_WORKERS,
        "serial_s": round(_timings["serial_s"], 4),
        "parallel_s": round(_timings["parallel_s"], 4),
        "speedup": round(_timings["serial_s"] / _timings["parallel_s"], 3),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1))
