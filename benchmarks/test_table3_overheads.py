"""Bench: regenerate Table 3 (ORAM vs ObfusMem+Auth) and check its shape.

Paper: ORAM averages 946.1% overhead, ObfusMem+Auth 10.9%, speedup 9.1x.
We assert the reproduction's load-bearing claims: ORAM is an order of
magnitude (not a constant factor) slower; ObfusMem stays in the tens of
percent; overhead tracks memory intensity.
"""

from conftest import REQUESTS, SEED, SUBSET, run_once

from repro.experiments import table3


def test_table3_overheads(benchmark):
    result = run_once(
        benchmark, table3.run, benchmarks=SUBSET, num_requests=REQUESTS, seed=SEED
    )
    print("\n" + table3.format_results(result))
    by_name = {row.benchmark: row for row in result.rows}

    # Headline: ObfusMem is ~an order of magnitude faster than ORAM on the
    # memory-intensive workloads.
    assert by_name["bwaves"].speedup > 8
    assert by_name["mcf"].speedup > 6
    # Light workloads see little from either scheme (astar: 30.7% / 0.1%).
    assert by_name["astar"].oram_overhead_pct < 60
    assert by_name["astar"].obfusmem_auth_overhead_pct < 3
    # Every benchmark: ORAM dwarfs ObfusMem.
    for row in result.rows:
        assert row.oram_overhead_pct > 5 * row.obfusmem_auth_overhead_pct
    # ORAM overheads land within ~35% of the paper's per-benchmark numbers
    # (the calibration target), ObfusMem in the right regime.
    for row in result.rows:
        assert row.oram_overhead_pct > 0.6 * row.paper_oram_pct
        assert row.oram_overhead_pct < 1.5 * row.paper_oram_pct + 20
        assert row.obfusmem_auth_overhead_pct < max(3 * row.paper_obfusmem_pct, 5)
