"""Sensitivity: how robust is Table 3 to the ORAM latency assumption?

The paper models ORAM with a fixed 2500 ns access "obtained by
extrapolating ... our latency assumption is optimistic" (§4).  This sweep
shows the headline conclusion — ObfusMem is an order of magnitude faster —
holds even if ORAM were 2-4x faster than the paper assumed.
"""


from conftest import SEED, run_once

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

REQUESTS = 1000
LATENCIES_NS = (625.0, 1250.0, 2500.0, 5000.0)


def _sweep():
    profile = SPEC_PROFILES["milc"]
    baseline = run_benchmark(
        profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS, seed=SEED
    )
    obfus = run_benchmark(
        profile, ProtectionLevel.OBFUSMEM_AUTH, num_requests=REQUESTS, seed=SEED
    )
    obfus_overhead = obfus.overhead_pct(baseline)
    oram_overheads = {}
    for latency in LATENCIES_NS:
        machine = MachineConfig(oram_access_latency_ns=latency)
        result = run_benchmark(
            profile,
            ProtectionLevel.ORAM,
            machine=machine,
            num_requests=REQUESTS,
            seed=SEED,
        )
        oram_overheads[latency] = result.overhead_pct(baseline)
    return obfus_overhead, oram_overheads


def test_oram_latency_sensitivity(benchmark):
    obfus_overhead, oram_overheads = run_once(benchmark, _sweep)
    print(f"\nObfusMem+Auth: {obfus_overhead:.1f}%")
    for latency, overhead in sorted(oram_overheads.items()):
        speedup = (100 + overhead) / (100 + obfus_overhead)
        print(f"ORAM @ {latency:6.0f} ns: {overhead:8.1f}%  (speedup {speedup:5.1f}x)")

    # Overhead scales with the assumed latency.
    values = [oram_overheads[latency] for latency in sorted(oram_overheads)]
    assert values == sorted(values)
    # Even at 4x-optimistic ORAM (625 ns), ObfusMem wins by a wide margin.
    fastest_oram = oram_overheads[min(LATENCIES_NS)]
    assert fastest_oram > 5 * obfus_overhead
    # At the paper's 2500 ns, the order-of-magnitude gap holds.
    assert oram_overheads[2500.0] > 40 * obfus_overhead
