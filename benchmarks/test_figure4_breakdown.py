"""Bench: regenerate Figure 4 (overhead breakdown by protection level).

Paper averages: encryption-only 2.2%, ObfusMem 8.3%, ObfusMem+Auth 10.9% —
cumulative, with authentication nearly free thanks to MAC/encryption
overlap (Observation 5).
"""

from conftest import REQUESTS, SEED, SUBSET, run_once

from repro.experiments import figure4


def test_figure4_breakdown(benchmark):
    result = run_once(
        benchmark, figure4.run, benchmarks=SUBSET, num_requests=REQUESTS, seed=SEED
    )
    print("\n" + figure4.format_results(result))
    # Cumulative ordering per benchmark: enc <= obfus <= obfus+auth
    # (up to simulation noise on the near-zero workloads).
    for row in result.rows:
        assert row.encryption_pct <= row.obfusmem_pct + 0.5
        assert row.obfusmem_pct <= row.obfusmem_auth_pct + 0.5
    # Authentication is cheap: it adds only a small slice on top of
    # obfuscation (paper: +2.6 points), never dominating.
    auth_delta = result.avg_obfusmem_auth_pct - result.avg_obfusmem_pct
    assert 0 <= auth_delta < 5.0
    # Obfuscation overhead stays in the paper's regime (single-digit to
    # low-tens of percent), nowhere near ORAM territory.
    assert result.avg_obfusmem_auth_pct < 30.0
    by_name = {row.benchmark: row for row in result.rows}
    # Memory-light workloads are nearly free at every level.
    assert by_name["astar"].obfusmem_auth_pct < 2.0
