"""Bench: regenerate Figure 5 (channel-count sweep, UNOPT vs OPT).

Paper: with 8 channels, full dummy replication (UNOPT) costs up to
18.8%/16.3% (with/without auth) while idle-only injection (OPT) limits the
damage to 13.2%/10.1% — Observation 6: the optimization grows increasingly
critical with channel count.

Reduced scale: two channel counts, two cores, three workloads.
"""

from conftest import SEED, run_once

from repro.core.config import ChannelInjection
from repro.experiments import figure5

BENCHMARKS = ["bwaves", "mcf", "libquantum"]


def test_figure5_channels(benchmark):
    result = run_once(
        benchmark,
        figure5.run,
        benchmarks=BENCHMARKS,
        channel_counts=(2, 4),
        num_requests=600,
        seed=SEED,
        cores=2,
    )
    print("\n" + figure5.format_results(result))
    for channels in (2, 4):
        unopt = result.point(channels, ChannelInjection.UNOPT, True)
        opt = result.point(channels, ChannelInjection.OPT, True)
        # Observation 6: OPT strictly cheaper than UNOPT.
        assert opt.avg_overhead_pct < unopt.avg_overhead_pct
    # The UNOPT-vs-OPT gap stays material as channels multiply (at full
    # scale it widens monotonically; this reduced-scale bench only checks
    # it does not collapse).
    gap_2 = (
        result.point(2, ChannelInjection.UNOPT, True).avg_overhead_pct
        - result.point(2, ChannelInjection.OPT, True).avg_overhead_pct
    )
    gap_4 = (
        result.point(4, ChannelInjection.UNOPT, True).avg_overhead_pct
        - result.point(4, ChannelInjection.OPT, True).avg_overhead_pct
    )
    assert gap_2 > 1.0
    assert gap_4 > 0.6 * gap_2
    # Authentication adds on top in every configuration.
    for channels in (2, 4):
        for injection in (ChannelInjection.UNOPT, ChannelInjection.OPT):
            with_auth = result.point(channels, injection, True).avg_overhead_pct
            without = result.point(channels, injection, False).avg_overhead_pct
            assert with_auth >= without - 0.5
