"""Bench: worker-pool scaling and burst admission for the pooled service.

Measures the two behaviours the worker-pool PR promises, against live
:class:`~repro.serve.harness.ServerThread` instances on ephemeral ports:

* **throughput scaling** — the same 12-spec cold sweep (6 protection
  levels x 2 seeds, all distinct digests so nothing coalesces or caches)
  driven through cache-less servers with 1, 2 and 4 persistent workers.
  Acceptance bar: 1 -> 4 workers speeds the sweep up by at least
  ``SCALING_FLOOR_1_TO_4`` (2.5x) — enforced only when the machine
  actually has 4+ CPUs to scale onto (recorded either way).
* **burst admission** — a 16-job distinct-digest burst against the
  default queue depth (16) submitted by a no-retry client: every job
  must be accepted outright (zero 429s) and reach a terminal state,
  because backpressure queues work instead of rejecting it until the
  backlog is genuinely full.

Results land in ``benchmarks/BENCH_serve_pool_scaling.json`` together
with per-point worker health from ``/metrics``.
"""

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.serve import LoadGenerator, ServerThread, ServiceConfig

SWEEP_LEVELS = (
    "unprotected",
    "encryption_only",
    "obfusmem",
    "obfusmem_auth",
    "oram",
    "hide",
)
SWEEP_SEEDS = (2017, 2018)
SWEEP_NUM_REQUESTS = 1200
WORKER_POINTS = (1, 2, 4)
LOAD_THREADS = 8
SCALING_FLOOR_1_TO_4 = 2.5  # acceptance: 4 workers >= 2.5x the 1-worker rate
BURST_JOBS = 16
BURST_SPEC = {"benchmark": "mcf", "level": "obfusmem_auth", "num_requests": 800}

OUTPUT_PATH = Path(__file__).parent / "BENCH_serve_pool_scaling.json"

_measured: dict[str, dict] = {}


def _cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_specs() -> list[dict]:
    """The 12 distinct-digest cold jobs every scaling point simulates."""
    return [
        {
            "benchmark": "mcf",
            "level": level,
            "num_requests": SWEEP_NUM_REQUESTS,
            "seed": seed,
        }
        for level in SWEEP_LEVELS
        for seed in SWEEP_SEEDS
    ]


def test_throughput_scales_with_workers():
    points = {}
    for workers in WORKER_POINTS:
        # Cache-less and fresh per point: every request is a real
        # simulation on a worker process, so the sweep rate measures the
        # pool, not the cache.
        config = ServiceConfig(workers=workers, queue_depth=32, cache_dir=None)
        with ServerThread(config, drain_grace_s=300.0) as server:
            # One throwaway job warms the forked workers off the clock.
            server.client().run(
                dict(BURST_SPEC, num_requests=200, seed=1), deadline_s=300.0
            )
            report = LoadGenerator(
                host="127.0.0.1",
                port=server.port,
                specs=sweep_specs(),
                threads=LOAD_THREADS,
                deadline_s=600.0,
            ).run()
            metrics = server.service.metrics()
        assert report.failed == 0
        assert report.completed == len(sweep_specs())
        assert metrics["worker_restarts"] == 0
        assert metrics["workers_online"] == workers
        points[str(workers)] = {
            "requests_per_sec": report.to_jsonable()["requests_per_sec"],
            "wall_s": report.to_jsonable()["wall_s"],
            "latency_mean_s": report.to_jsonable()["latency_mean_s"],
            "sim_events_per_sec": metrics["sim_events_per_sec"],
        }

    scaling = (
        points["4"]["requests_per_sec"] / points["1"]["requests_per_sec"]
        if points["1"]["requests_per_sec"]
        else 0.0
    )
    cpus = _cpus()
    floor_enforced = cpus >= 4
    _measured["scaling"] = {
        "points": points,
        "scaling_1_to_4": round(scaling, 2),
        "scaling_floor": SCALING_FLOOR_1_TO_4,
        "cpus": cpus,
        "floor_enforced": floor_enforced,
    }
    if floor_enforced:
        assert scaling >= SCALING_FLOOR_1_TO_4, (
            f"4 workers only {scaling:.2f}x the 1-worker sweep rate "
            f"(floor {SCALING_FLOOR_1_TO_4}x on {cpus} CPUs): {points}"
        )


def test_default_depth_accepts_a_16_job_burst_without_rejections():
    with tempfile.TemporaryDirectory(prefix="serve-pool-bench-") as cache_dir:
        config = ServiceConfig(workers=2, cache_dir=Path(cache_dir) / "cache")
        assert config.queue_depth == BURST_JOBS  # the default depth
        with ServerThread(config, drain_grace_s=300.0) as server:
            # No retries: a single 429 anywhere fails the burst outright.
            raw = server.client(max_retries=0)
            accepted = [
                raw.submit(dict(BURST_SPEC, seed=seed))
                for seed in range(1, BURST_JOBS + 1)
            ]
            finals = [raw.wait(job["id"], deadline_s=600.0) for job in accepted]
            metrics = server.service.metrics()
    assert len(accepted) == BURST_JOBS  # every POST answered 202, no 429s
    assert all(final["state"] == "done" for final in finals)
    rejected = metrics["counters"].get("serve.rejected_saturated", 0.0)
    assert rejected == 0.0, f"burst saw {rejected} saturation rejections"
    _measured["burst_admission"] = {
        "queue_depth": config.queue_depth,
        "offered": BURST_JOBS,
        "accepted_202": len(accepted),
        "rejected_429": int(rejected),
        "completed_done": sum(1 for final in finals if final["state"] == "done"),
        "worker_restarts": metrics["worker_restarts"],
    }


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _measured:
        payload = {
            "bench": "serve_pool_scaling",
            "sweep_levels": list(SWEEP_LEVELS),
            "sweep_seeds": list(SWEEP_SEEDS),
            "sweep_num_requests": SWEEP_NUM_REQUESTS,
            "worker_points": list(WORKER_POINTS),
            "load_threads": LOAD_THREADS,
        }
        payload.update(_measured)
        OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
