"""Ablation: ECB vs counter-mode address encryption (§3.2).

ECB hides spatial locality but leaks temporal reuse, footprint and access
frequencies — the paper rejects it for exactly the dictionary attack this
bench runs.  Counter mode leaks none of the three.
"""

from collections import Counter

from conftest import SEED, run_once

from repro.analysis.attacks import EcbAddressObfuscation, dictionary_attack
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.ctr import CtrPadGenerator
from repro.crypto.rng import DeterministicRng

REQUESTS = 2000


def _wire_streams():
    """Encode one workload's address stream under ECB and under CTR."""
    profile = SPEC_PROFILES["omnetpp"]  # smallest footprint: real reuse
    trace = make_trace(profile, REQUESTS, seed=SEED)
    # Confine to a hot region so the frequency distribution is attackable.
    addresses = [record.address % (1 << 16) for record in trace]
    rng = DeterministicRng(SEED)
    ecb = EcbAddressObfuscation(rng.token_bytes(16))
    ecb_wire = [ecb.encrypt_address(a) for a in addresses]
    ctr = CtrPadGenerator(rng.token_bytes(16))
    ctr_wire = [
        bytes(x ^ y for x, y in zip(a.to_bytes(16, "big"), ctr.next_pads(1)[0]))
        for a in addresses
    ]
    return addresses, ecb_wire, ctr_wire


def test_ecb_leakage_ablation(benchmark):
    addresses, ecb_wire, ctr_wire = run_once(benchmark, _wire_streams)

    ecb_attack = dictionary_attack(addresses, ecb_wire, top_k=8)
    ctr_attack = dictionary_attack(addresses, ctr_wire, top_k=8)
    print(f"\ndictionary attack: ECB {ecb_attack.accuracy:.2f}, "
          f"CTR {ctr_attack.accuracy:.2f}")

    # ECB: frequency analysis recovers most hot addresses.
    assert ecb_attack.accuracy >= 0.75
    # CTR: nothing.
    assert ctr_attack.accuracy == 0.0

    # Temporal reuse: ECB repeats an encoding every time an address
    # repeats; CTR never does.
    ecb_repeats = sum(c - 1 for c in Counter(ecb_wire).values())
    ctr_repeats = sum(c - 1 for c in Counter(ctr_wire).values())
    true_repeats = sum(c - 1 for c in Counter(addresses).values())
    assert ecb_repeats == true_repeats
    assert ctr_repeats == 0

    # Footprint: ECB leaks the exact block count; CTR degenerates to n.
    assert len(set(ecb_wire)) == len(set(addresses))
    assert len(set(ctr_wire)) == len(ctr_wire)
