"""Bench: prefix-sharing sweep schedule vs naive shuffled execution.

A compiled design-space sweep contains many *families* — specs identical
except for ``num_requests`` — and a naive executor pays the shared trace
prefix of every family member from zero.  The prefix-sharing scheduler
(``repro/experiments/sweep.py``) runs each family shortest-first, persists
a few late-milestone snapshots per seeding member, and forks every longer
member from the deepest snapshot its predecessor left, so a family of
lengths ``n_1 < ... < n_k`` costs roughly ``n_1 + sum(n_i - 0.9 n_{i-1})``
events instead of ``sum(n_i)``.

The grid here compiles to 120 points (24 families x 5 request counts over
two benchmarks, three schemes, two seeds and two channel widths).  The
test executes it both ways — naive: shuffled, cold, no store; scheduled:
``run_sweep`` with a fresh checkpoint store — asserts the scheduled run is
at least 1.5x faster, that every per-digest result is bit-identical, and
that the Pareto aggregates (the frontier fold both executions feed) hash
identically, then writes ``benchmarks/BENCH_sweep_scaling.json``.  The
win is event-count arithmetic, not machine speed, so the floor holds
across hosts.
"""

import json
import random
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from conftest import SEED, run_once
from repro.experiments import trace_cache
from repro.experiments.checkpoints import CheckpointStore
from repro.experiments.executor import ParallelRunner
from repro.experiments.pareto import ParetoAggregator
from repro.experiments.sweep import SweepAxis, SweepSpec, run_sweep

LENGTHS = [600, 1200, 1800, 2400, 3000]
MIN_SPEEDUP = 1.5
OUTPUT_PATH = Path(__file__).parent / "BENCH_sweep_scaling.json"

SPEC = SweepSpec(
    axes=(
        SweepAxis("benchmark", ("mcf", "astar")),
        SweepAxis("level", ("unprotected", "encryption_only", "obfusmem_auth")),
        SweepAxis("num_requests", tuple(LENGTHS)),
        SweepAxis("seed", (SEED, SEED + 1)),
        SweepAxis("machine.channels", (1, 2)),
    ),
    baselines=False,  # unprotected is already an explicit axis value
)

_runs: dict[str, object] = {}


def _compiled_jobs():
    jobs = list(SPEC.compile().jobs)
    assert len(jobs) >= 100, f"grid shrank to {len(jobs)} points"
    return jobs


def _fold(jobs, results_by_digest):
    """Feed every (spec, result) pair into a fresh Pareto aggregator."""
    aggregator = ParetoAggregator()
    for spec in jobs:
        aggregator.add(spec, results_by_digest[spec.digest()])
    return aggregator


def _run_naive(jobs):
    shuffled = list(jobs)
    random.Random(SEED).shuffle(shuffled)
    runner = ParallelRunner(workers=1)
    trace_cache.clear_memo()  # both phases start with a cold trace memo
    started = time.perf_counter()
    results = runner.run(shuffled, label="sweep-scaling-naive")
    elapsed = time.perf_counter() - started
    return {s.digest(): r for s, r in zip(shuffled, results)}, elapsed


def _run_scheduled(jobs, directory):
    store = CheckpointStore(directory)
    trace_cache.clear_memo()  # both phases start with a cold trace memo
    started = time.perf_counter()
    run = run_sweep(jobs, workers=1, checkpoints=store, label="sweep-scaling")
    elapsed = time.perf_counter() - started
    _runs["warm_starts"] = run.manifest.checkpoint_hits
    _runs["events_resumed"] = run.manifest.events_resumed
    _runs["waves"] = len(run.plan.waves)
    _runs["families"] = run.plan.families
    return run.results, elapsed


def test_naive_shuffled_baseline(benchmark):
    jobs = _compiled_jobs()
    results, elapsed = run_once(benchmark, _run_naive, jobs)
    _runs["naive_s"] = elapsed
    _runs["naive_results"] = results
    _runs["naive_digest"] = _fold(jobs, results).aggregate_digest()
    assert len(results) == len(jobs)


def test_scheduled_sweep_faster_and_bit_identical(benchmark):
    jobs = _compiled_jobs()
    directory = Path(tempfile.mkdtemp(prefix="repro-sweep-bench-"))
    try:
        results, elapsed = run_once(benchmark, _run_scheduled, jobs, directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    _runs["scheduled_s"] = elapsed
    assert _runs["warm_starts"] > 0, "scheduler never forked a checkpoint"
    naive_results = _runs.get("naive_results")
    if naive_results is None:
        naive_results, _runs["naive_s"] = _run_naive(jobs)
        _runs["naive_digest"] = _fold(jobs, naive_results).aggregate_digest()
    # Correctness first: forking must be invisible in the physics.
    for spec in jobs:
        cold, warm = naive_results[spec.digest()], results[spec.digest()]
        assert warm.execution_time_ns == cold.execution_time_ns
        assert warm.stats == cold.stats
    # ... and in the aggregates the frontier is built from.
    scheduled_digest = _fold(jobs, results).aggregate_digest()
    assert scheduled_digest == _runs["naive_digest"]
    _runs["pareto_digest"] = scheduled_digest
    _runs["speedup"] = _runs["naive_s"] / elapsed
    assert _runs["speedup"] >= MIN_SPEEDUP


def _emit():
    if "naive_s" not in _runs or "scheduled_s" not in _runs:
        return  # a subset of the module ran; don't emit a partial record
    payload = {
        "bench": "sweep_scaling",
        "points": len(_compiled_jobs()),
        "lengths": LENGTHS,
        "families": _runs.get("families"),
        "waves": _runs.get("waves"),
        "warm_starts": _runs.get("warm_starts"),
        "events_resumed": _runs.get("events_resumed"),
        "naive_s": round(_runs["naive_s"], 4),
        "scheduled_s": round(_runs["scheduled_s"], 4),
        "speedup": round(_runs["naive_s"] / _runs["scheduled_s"], 3),
        "min_speedup_asserted": MIN_SPEEDUP,
        "pareto_digest": _runs.get("pareto_digest"),
        "bit_identical": True,  # asserted above, for the record
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1))


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_sweep_scaling.json`` once both phases have run."""
    yield
    _emit()
